"""Declarative scenario specifications for the experiment subsystem.

A :class:`ScenarioSpec` describes one end-to-end experiment — the map (a
parametric fulfillment-center or sorting-center layout), the workload (total
units and demand mix), the solver configuration, and the simulation knobs —
as a flat, JSON-serializable record.  ``build()`` turns the spec into the
concrete :class:`~repro.maps.fulfillment.DesignedWarehouse` and
:class:`~repro.warehouse.workload.Workload` the pipeline consumes, so the
experiment runner (and anything replaying a result file) can reconstruct the
exact instance from the record alone.

Scenarios are identified by :attr:`ScenarioSpec.scenario_id`, a stable hash
of every semantically relevant field (the cosmetic ``name`` is excluded).
Two sweeps that ran the same scenario therefore produce records that can be
matched for regression comparison, regardless of how the scenario was named
or in which order it was generated.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..maps.fulfillment import DesignedWarehouse, FulfillmentLayout, generate_fulfillment_center
from ..maps.sorting import SortingLayout, generate_sorting_center
from ..sim.disruptions import DisruptionError, parse_disruptions
from ..sim.routing import ROUTERS
from ..sim.stations import ServiceTimeModel
from ..warehouse import WarehouseError, Workload

SCENARIO_KINDS = ("fulfillment", "sorting")
WORKLOAD_MIXES = ("uniform", "zipf")


class ScenarioError(ValueError):
    """Raised for structurally invalid scenario specifications."""


def parse_service_time(spec: str) -> ServiceTimeModel:
    """``"0"`` / ``"uniform:2,6"`` / ``"geometric:4"`` -> a service-time model."""
    kind, _, params = spec.partition(":")
    try:
        if kind == "uniform":
            lo, hi = (int(p) for p in params.split(","))
            return ServiceTimeModel.uniform(lo, hi)
        if kind == "geometric":
            return ServiceTimeModel.geometric(float(params))
        return ServiceTimeModel.deterministic(int(kind))
    except ValueError as error:
        raise ScenarioError(
            f"invalid service time {spec!r} (use N, uniform:LO,HI or geometric:MEAN): {error}"
        ) from error


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment scenario: map parameters + workload + solver + sim knobs.

    For ``kind="sorting"`` the layout fields are reinterpreted under the
    paper's sorting-center reduction: ``shelf_columns`` are chute columns
    (spaced by ``chute_spacing``), ``shelf_bands`` are chute bands,
    ``num_stations``/``station_cells`` are bins/bin cells, and
    ``num_products`` is ignored — one product per chute is derived from the
    geometry.
    """

    kind: str = "fulfillment"
    # -- map geometry (FulfillmentLayout / SortingLayout parameters) ------------
    num_slices: int = 2
    shelf_columns: int = 4
    shelf_bands: int = 3
    shelf_depth: int = 1
    num_stations: int = 1
    station_cells: int = 1
    spread_station_cells: bool = False
    chute_spacing: int = 2
    extra_bottom_rows: int = 0
    num_products: int = 6
    stock_units_per_product: int = 0
    #: Slotting permutation: the product assigned to the i-th shuffled shelf is
    #: ``product_order[i % num_products]``.  Empty means the identity order
    #: ``(1, ..., num_products)`` — the round-robin stocking every pre-existing
    #: scenario used.  This is the combinatorial knob ``repro optimize``
    #: searches (neighbor = swap two positions).
    product_order: Tuple[int, ...] = ()
    # -- workload ---------------------------------------------------------------
    units: int = 12
    workload_mix: str = "uniform"
    zipf_exponent: float = 1.1
    horizon: int = 1000
    # -- solver -----------------------------------------------------------------
    backend: str = "highs"
    objective: str = "min_agents"
    # -- simulation (stage 6) ---------------------------------------------------
    simulate: bool = True
    service_time: str = "0"
    arrival_rate: Optional[float] = None
    # -- routing (grid-routed execution; see repro.sim.routing) ------------------
    router: str = "abstract"
    routing_window: int = 0
    # -- disruptions (failure injection; see repro.sim.disruptions) ---------------
    #: Disruption spec string (``"none"`` or ``"breakdown:0.02:25,block:0.01"``;
    #: the grammar of :func:`repro.sim.disruptions.parse_disruptions`).
    disruptions: str = "none"
    # -- identity ---------------------------------------------------------------
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        # JSON round-trips deliver sequences as lists; normalize so equality,
        # hashing and asdict() behave identically for loaded and built specs.
        if not isinstance(self.product_order, tuple):
            object.__setattr__(self, "product_order", tuple(self.product_order))

    # -- identity / serialization ----------------------------------------------
    @property
    def label(self) -> str:
        """The display name: ``name`` if set, otherwise derived from the dims."""
        if self.name:
            return self.name
        router = "" if self.router == "abstract" else f"-{self.router}"
        disrupted = "" if self.disruptions == "none" else "-disrupted"
        return (
            f"{self.kind}-b{self.num_slices}c{self.shelf_columns}x{self.shelf_bands}"
            f"-st{self.num_stations}-u{self.units}-{self.workload_mix}-s{self.seed}"
            f"{router}{disrupted}"
        )

    @property
    def scenario_id(self) -> str:
        """Stable 12-hex-digit identity over every field except ``name``.

        Fields added after v1.2 are dropped from the hash payload while they
        hold their defaults, so every pre-existing scenario keeps its id and
        archived baselines stay matchable by ``repro sweep --compare`` across
        schema growth.  Follow the same pattern for future spec fields.

        The hash is computed once per instance and memoized (the spec is
        frozen, so it cannot go stale): the serving layer keys every cache
        lookup on this id, which makes it a hot path under load.
        """
        cached = self.__dict__.get("_scenario_id")
        if cached is not None:
            return cached
        payload = asdict(self)
        payload.pop("name")
        if payload["router"] == "abstract":
            del payload["router"]
        if payload["routing_window"] == 0:
            del payload["routing_window"]
        if payload["disruptions"] == "none":
            del payload["disruptions"]
        if not payload["product_order"]:
            del payload["product_order"]
        else:
            payload["product_order"] = list(payload["product_order"])
        canonical = json.dumps(payload, sort_keys=True)
        scenario_id = hashlib.sha1(canonical.encode()).hexdigest()[:12]
        # Frozen dataclass: the memo must bypass the frozen __setattr__.  The
        # cache lives outside the field set, so equality, asdict() and
        # replace() are unaffected.
        object.__setattr__(self, "_scenario_id", scenario_id)
        return scenario_id

    def to_dict(self) -> Dict:
        from ..io.serialization import scenario_to_dict  # io owns the schemas

        return scenario_to_dict(self)

    @staticmethod
    def from_dict(document: Dict) -> "ScenarioSpec":
        from ..io.serialization import scenario_from_dict

        return scenario_from_dict(document)

    def with_updates(self, **updates) -> "ScenarioSpec":
        """A copy of this spec with ``updates`` applied (frozen-safe replace).

        Unknown field names raise :class:`ScenarioError` instead of the bare
        ``TypeError`` ``dataclasses.replace`` gives — optimizer knobs are built
        from strings, and a typo must fail with the field name it tried.
        The copy is a fresh instance, so its ``scenario_id`` is recomputed
        (changing only ``name`` keeps the id; changing any hashed field
        changes it).
        """
        known = {f.name for f in fields(self)}
        unknown = sorted(set(updates) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s) {unknown}; expected among {sorted(known)}"
            )
        return replace(self, **updates)

    # -- validation -------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScenarioError` when the spec cannot describe a map."""
        if self.kind not in SCENARIO_KINDS:
            raise ScenarioError(
                f"unknown scenario kind {self.kind!r}; expected one of {SCENARIO_KINDS}"
            )
        if self.workload_mix not in WORKLOAD_MIXES:
            raise ScenarioError(
                f"unknown workload mix {self.workload_mix!r}; expected one of {WORKLOAD_MIXES}"
            )
        if self.units < 0:
            raise ScenarioError("units must be non-negative")
        if self.horizon <= 0:
            raise ScenarioError("horizon must be positive")
        if self.arrival_rate is not None and not self.arrival_rate > 0:
            raise ScenarioError("arrival_rate must be positive when set")
        if self.router not in ROUTERS:
            raise ScenarioError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.routing_window < 0:
            raise ScenarioError("routing_window must be non-negative")
        if self.product_order and self.kind == "sorting":
            # Sorting centers derive one product per chute from the geometry;
            # a slotting permutation would be silently ignored at build time
            # while still perturbing the scenario's hash identity.
            raise ScenarioError("product_order only applies to fulfillment scenarios")
        if self.router == "abstract" and self.routing_window:
            # The window would be silently ignored at run time while still
            # perturbing the scenario's hash identity — reject the combination
            # (the CLI enforces the same rule).
            raise ScenarioError(
                "routing_window only applies to grid routers (router != 'abstract')"
            )
        parse_service_time(self.service_time)
        try:
            parse_disruptions(self.disruptions)
        except DisruptionError as error:
            raise ScenarioError(f"invalid disruptions {self.disruptions!r}: {error}") from error
        try:
            self.layout().validate()
        except WarehouseError as error:
            raise ScenarioError(f"invalid map geometry: {error}") from error

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ScenarioError:
            return False
        return True

    # -- materialization --------------------------------------------------------
    def disruption_config(self):
        """The :class:`~repro.sim.disruptions.DisruptionConfig` this spec asks
        for, or ``None`` for nominal (undisrupted) execution."""
        return parse_disruptions(self.disruptions)

    def routing_config(self):
        """The :class:`~repro.sim.routing.RoutingConfig` this spec asks for,
        or ``None`` for the abstract (plan-replay) execution mode."""
        if self.router == "abstract":
            return None
        from ..sim.routing import RoutingConfig

        return RoutingConfig(router=self.router, window=self.routing_window)

    def _sorting_layout(self) -> SortingLayout:
        return SortingLayout(
            num_slices=self.num_slices,
            chute_columns=self.shelf_columns,
            chute_bands=self.shelf_bands,
            chute_spacing=self.chute_spacing,
            num_bins=self.num_stations,
            bin_cells=self.station_cells,
            extra_bottom_rows=self.extra_bottom_rows,
            name=self.label,
            seed=self.seed,
        )

    def layout(self):
        """The map-generator layout this spec describes."""
        if self.kind == "sorting":
            return self._sorting_layout().to_fulfillment_layout()
        return FulfillmentLayout(
            num_slices=self.num_slices,
            shelf_columns=self.shelf_columns,
            shelf_bands=self.shelf_bands,
            shelf_depth=self.shelf_depth,
            num_stations=self.num_stations,
            station_cells=self.station_cells,
            spread_station_cells=self.spread_station_cells,
            num_products=self.num_products,
            stock_units_per_product=self.stock_units_per_product,
            product_order=self.product_order,
            extra_bottom_rows=self.extra_bottom_rows,
            name=self.label,
            seed=self.seed,
        )

    def build(self) -> Tuple[DesignedWarehouse, Workload]:
        """Materialize the designed warehouse and the workload."""
        self.validate()
        if self.kind == "sorting":
            designed = generate_sorting_center(self._sorting_layout()).designed
        else:
            designed = generate_fulfillment_center(self.layout())
        catalog = designed.warehouse.catalog
        if self.workload_mix == "zipf":
            workload = Workload.zipf(
                catalog,
                self.units,
                exponent=self.zipf_exponent,
                rng=np.random.default_rng(self.seed),
            )
        else:
            workload = Workload.uniform(catalog, self.units)
        return designed, workload

    def describe(self) -> str:
        layout = self.layout()
        return (
            f"{self.label}: {self.kind}, {layout.width}x{layout.height} cells, "
            f"{layout.num_shelves} shelves, {self.units} units ({self.workload_mix}), "
            f"T={self.horizon}, seed={self.seed}"
        )


#: The spec field names a generator axis may vary (everything but ``name``).
SWEEPABLE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(ScenarioSpec) if f.name != "name"
)
