"""Parallel experiment orchestration: many solve→simulate runs, one result file.

:func:`run_sweep` executes a list of scenarios through the full pipeline —
map generation, flow synthesis, decomposition, realization, validation, and
(optionally) the digital twin — either in-process or across a
``multiprocessing`` worker pool.  Every scenario yields exactly one
:class:`~repro.experiments.store.RunRecord`:

* a *successful* run carries the solution/simulation headline numbers;
* an *infeasible* instance (stock-insufficient demand, unsatisfiable
  contracts) is a first-class result, not a crash;
* a worker exception is captured as a structured ``error`` record (with the
  traceback in the message) without aborting the batch;
* runs exceeding the per-run timeout are recorded as ``timeout`` — the budget
  is enforced twice, as a POSIX ``SIGALRM`` interrupting the Python stages
  and as the ILP backend's own native time limit (a signal cannot interrupt
  the HiGHS C call).

Workers are spawned (not forked) so runs are isolated and reproducible, and
records are appended to the store in scenario order, so a sweep's output file
is deterministic modulo wall-clock timings.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence

from .scenario import ScenarioError, ScenarioSpec, parse_service_time
from .store import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultStore,
    RunRecord,
)


class ScenarioTimeout(Exception):
    """Raised inside a worker when a run exceeds its time budget."""


@contextmanager
def _deadline(seconds: Optional[float]):
    """Interrupt the enclosed block after ``seconds`` (POSIX only; no-op elsewhere)."""
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise ScenarioTimeout(f"run exceeded the {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@contextmanager
def _events_env(path: Optional[str]):
    """Export ``REPRO_EVENTS`` so spawned workers inherit the event sink."""
    if not path:
        yield
        return
    previous = os.environ.get("REPRO_EVENTS")
    os.environ["REPRO_EVENTS"] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_EVENTS", None)
        else:
            os.environ["REPRO_EVENTS"] = previous


def _sim_payload(report) -> Dict[str, float]:
    """Condense a :class:`~repro.sim.runner.SimulationReport` for the record."""
    trace = report.trace
    payload = {
        "units_served": float(trace.units_served),
        "realized_throughput": float(report.realized_throughput),
        "synthesized_throughput": float(report.synthesized_throughput),
        "throughput_ratio": float(report.throughput_ratio),
        "orders_created": float(trace.orders_created),
        "orders_served": float(trace.orders_served),
        "contract_violations": float(report.num_violations),
        "contracts_ok": float(report.contracts_ok),
    }
    if report.routing is not None:
        routing = report.routing
        payload.update(
            {
                "routing_completed": float(routing.completed),
                "routing_inflation": float(routing.inflation),
                "routing_replans": float(routing.replans),
                "routing_expansions": float(routing.expansions),
                "routing_conflicts": float(routing.conflicts),
                "routing_max_edge_load": float(routing.max_edge_load),
            }
        )
    if report.resilience is not None:
        resilience = report.resilience
        payload.update(
            {
                "throughput_retention": float(resilience.throughput_retention),
                "disruptions": float(resilience.num_disruptions),
                "recoveries": float(resilience.num_recoveries),
                "mean_recovery_latency": float(resilience.mean_recovery_latency),
                "agent_downtime": float(resilience.agent_downtime),
                "dropped_orders": float(resilience.dropped_orders),
                "late_orders": float(resilience.late_orders),
                "breach_windows": float(resilience.breach_windows),
            }
        )
    return payload


def _obs_payload(status: str, timings: Dict[str, float]) -> Dict:
    """Condense one run's observability into a process-crossing document.

    A worker-local :class:`~repro.obs.MetricsRegistry` records the run's
    outcome and per-stage wall times; the worker's process-wide registry —
    where the sim engine accumulates disruption and contract-breach counters
    — is *drained* in (shipped exactly once, even when a pool worker is
    reused).  In-process runs skip the drain: their sim counters already
    accumulate directly into the parent's registry, and draining it here
    would cycle the parent's own totals back through the merge.  When
    tracing is on (``REPRO_OBS=1`` is inherited by spawned workers) the
    worker's finished spans ride along too.  The parent folds the metrics
    into its own registry and drops the payload before the record reaches
    the result store.
    """
    from multiprocessing import parent_process

    from ..obs import MetricsRegistry, drain_spans, get_registry, tracing_enabled

    registry = MetricsRegistry()
    registry.counter(
        "repro_runs_total", "Pipeline runs by outcome status", status=status
    ).inc()
    for stage, seconds in timings.items():
        registry.histogram(
            "repro_stage_seconds", "Pipeline stage wall time", stage=stage
        ).observe(seconds)
    if parent_process() is not None:
        registry.merge(get_registry().drain())
    payload: Dict = {"metrics": registry.snapshot()}
    if tracing_enabled():
        payload["spans"] = drain_spans()
    return payload


def execute_scenario(
    document: Dict,
    timeout_seconds: Optional[float] = None,
    collect_obs: bool = False,
) -> Dict:
    """Run one scenario end to end; always returns a run-record document.

    This is the worker entry point: it takes and returns plain dictionaries
    so it crosses process boundaries cheaply, and it never raises — every
    failure mode is folded into the record's ``status``/``message``.  With
    ``collect_obs`` the document carries an extra ``obs`` key (metrics
    snapshot + any traced spans) for the parent to merge and strip.
    """
    # Imports deferred so spawned workers only pay for them once per process.
    from ..core.flow_synthesis import FlowSynthesisError
    from ..core.pipeline import SolverOptions, SynthesisOptions, WSPSolver
    from ..sim.runner import SimulationConfig
    from ..solver import SolveStatus
    from ..traffic.component import TrafficError
    from ..warehouse import WarehouseError, WorkloadError

    from ..obs import emit_event, event_context

    spec = ScenarioSpec.from_dict(document)
    timings: Dict[str, float] = {}
    run_started = time.perf_counter()

    def record(status: str, message: str = "", **outcome) -> Dict:
        result = RunRecord(
            spec=spec, status=status, message=message, timings=timings, **outcome
        ).to_dict()
        # Emitted with an explicit scenario_id: the except handlers below run
        # after the event_context block has already unwound.
        emit_event(
            "run.finished",
            "runner",
            level="info" if status in (STATUS_OK, STATUS_INFEASIBLE) else "warning",
            message=message[:200],
            scenario_id=spec.scenario_id,
            status=status,
            seconds=round(time.perf_counter() - run_started, 6),
        )
        if collect_obs:
            result["obs"] = _obs_payload(status, timings)
        return result

    try:
        with event_context(scenario_id=spec.scenario_id), _deadline(timeout_seconds):
            emit_event("run.started", "runner", message=spec.label)
            start = time.perf_counter()
            designed, workload = spec.build()
            timings["generate"] = time.perf_counter() - start

            options = SolverOptions(
                synthesis=SynthesisOptions(
                    backend=spec.backend,
                    objective=spec.objective,
                    # SIGALRM cannot interrupt the native HiGHS call, so the
                    # time budget is also handed to the ILP backend itself.
                    time_limit=timeout_seconds,
                )
            )
            solver = WSPSolver(designed.traffic_system, options)
            solution = solver.solve(workload, horizon=spec.horizon)
            timings.update(solution.timings)
            if not solution.succeeded:
                if solution.synthesis is not None and solution.synthesis.status == SolveStatus.LIMIT:
                    return record(STATUS_TIMEOUT, solution.message)
                return record(STATUS_INFEASIBLE, solution.message)

            sim: Dict[str, float] = {}
            if spec.simulate:
                config = SimulationConfig(
                    seed=spec.seed,
                    service_time=parse_service_time(spec.service_time),
                    arrival_rate=spec.arrival_rate,
                    record_events=False,
                    routing=spec.routing_config(),
                    disruptions=spec.disruption_config(),
                )
                report = solver.simulate(solution, config)
                timings["simulation"] = report.seconds
                sim = _sim_payload(report)

            return record(
                STATUS_OK,
                num_agents=solution.num_agents,
                units_delivered=solution.plan.total_delivered(),
                plan_feasible=solution.plan_is_feasible,
                workload_serviced=solution.services_workload,
                sim=sim,
            )
    except ScenarioTimeout as error:
        return record(STATUS_TIMEOUT, str(error))
    except (ScenarioError, WarehouseError, WorkloadError, TrafficError, FlowSynthesisError) as error:
        return record(STATUS_INFEASIBLE, str(error))
    except Exception:
        return record(STATUS_ERROR, traceback.format_exc(limit=8).strip())


@dataclass(frozen=True)
class SweepOptions:
    """Knobs of one batch run."""

    workers: int = 1
    #: Per-run wall-clock budget (``SIGALRM`` for the Python stages, the ILP
    #: backend's native time limit for the synthesis solve).
    timeout_seconds: Optional[float] = None
    #: ``multiprocessing`` start method; spawn keeps workers state-free.
    start_method: str = "spawn"
    #: Shared JSONL event sink.  The parent's event log appends here, and the
    #: path is exported as ``REPRO_EVENTS`` around pool creation so spawned
    #: workers interleave their ``run.started``/``run.finished`` events into
    #: the same file (flock-safe) — the feed ``repro top --events`` tails.
    events_path: Optional[str] = None


def run_sweep(
    specs: Sequence[ScenarioSpec],
    options: Optional[SweepOptions] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Execute every scenario and return one record each, in scenario order.

    With ``options.workers > 1`` the runs execute on a spawned process pool;
    a worker crash (even an interpreter abort) is confined to its scenario and
    surfaces as an ``error`` record.  Records are appended to ``store`` and
    reported through ``progress`` as soon as each scenario's result is
    available.
    """
    from ..obs import get_event_log, get_registry

    options = options or SweepOptions()
    if options.workers < 1:
        raise ScenarioError("workers must be at least 1")
    events = get_event_log()
    if options.events_path:
        events.attach_file(options.events_path)
    documents = [spec.to_dict() for spec in specs]
    status_counts: Dict[str, int] = {}
    sweep_started = time.perf_counter()
    events.emit(
        "sweep.started",
        "sweep",
        message=f"{len(specs)} scenario(s) on {options.workers} worker(s)",
        total=len(specs),
        workers=options.workers,
    )

    def finalize(document: Dict) -> RunRecord:
        obs_payload = document.pop("obs", None)
        if obs_payload:
            # Worker metrics fold into the process-wide registry; any traced
            # spans stay available to callers through the registry's side
            # channel users (the store only ever sees the plain record).
            get_registry().merge(obs_payload.get("metrics", {}))
        record = RunRecord.from_dict(document)
        if store is not None:
            store.append(record)
        status_counts[record.status] = status_counts.get(record.status, 0) + 1
        events.emit(
            "sweep.progress",
            "sweep",
            message=record.spec.label,
            scenario_id=record.scenario_id,
            status=record.status,
            completed=sum(status_counts.values()),
            total=len(specs),
        )
        if progress is not None:
            progress(record)
        return record

    def done(records: List[RunRecord]) -> List[RunRecord]:
        events.emit(
            "sweep.finished",
            "sweep",
            message=f"{status_counts.get(STATUS_OK, 0)}/{len(records)} ok",
            total=len(records),
            seconds=round(time.perf_counter() - sweep_started, 6),
            **{f"status_{name}": count for name, count in sorted(status_counts.items())},
        )
        return records

    if not specs:
        return done([])
    # Only a single *requested* worker runs in-process; a one-scenario sweep
    # with workers > 1 still goes through the pool so a hard crash is
    # captured as a record instead of taking the parent down.
    if options.workers == 1:
        return done(
            [
                finalize(execute_scenario(document, options.timeout_seconds, True))
                for document in documents
            ]
        )

    def failure_document(spec: ScenarioSpec, error: BaseException, crashed: bool) -> Dict:
        verb = "crashed" if crashed else "failed"
        events.emit(
            "run.crashed" if crashed else "run.failed",
            "sweep",
            level="error",
            message=f"{type(error).__name__}: {error}"[:200],
            scenario_id=spec.scenario_id,
        )
        return RunRecord(
            spec=spec,
            status=STATUS_ERROR,
            message=f"worker {verb}: {type(error).__name__}: {error}",
        ).to_dict()

    records: List[RunRecord] = []
    context = get_context(options.start_method)
    pending = list(zip(specs, documents))
    # A worker that dies hard (segfault, OOM kill) breaks the whole executor
    # and *every* unfinished future raises BrokenExecutor — including healthy
    # scenarios that happened to be in flight.  The main loop therefore never
    # guesses which scenario crashed: on a broken pool it salvages the futures
    # that did complete and re-runs each unfinished scenario in its own
    # single-worker pool, where a second crash is unambiguously that
    # scenario's own.
    with _events_env(options.events_path):
        with ProcessPoolExecutor(
            max_workers=min(options.workers, len(pending)), mp_context=context
        ) as pool:
            futures = [
                pool.submit(execute_scenario, document, options.timeout_seconds, True)
                for _, document in pending
            ]
            consumed = 0
            pool_broke = False
            for (spec, _), future in zip(pending, futures):
                try:
                    document = future.result()
                except BrokenExecutor:
                    pool_broke = True
                    break
                except Exception as error:  # submission/pickling failure
                    document = failure_document(spec, error, crashed=False)
                records.append(finalize(document))
                consumed += 1
        if not pool_broke:
            return done(records)

        # Exiting the `with` block above shut the broken pool down, so every
        # future is now settled: completed, broken, or cancelled.
        for (spec, document_in), future in list(zip(pending, futures))[consumed:]:
            if not future.cancelled() and future.exception() is None:
                records.append(finalize(future.result()))
                continue
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as solo:
                try:
                    document = solo.submit(
                        execute_scenario, document_in, options.timeout_seconds, True
                    ).result()
                except BrokenExecutor as error:
                    document = failure_document(spec, error, crashed=True)
                except Exception as error:
                    document = failure_document(spec, error, crashed=False)
            records.append(finalize(document))
    return done(records)
