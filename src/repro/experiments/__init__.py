"""Scenario generation and parallel experiment orchestration.

The experiment subsystem turns the repository from "solve the three catalog
presets" into a design-space exploration platform:

* :mod:`repro.experiments.scenario`  — declarative, JSON-serializable
  :class:`ScenarioSpec` (map geometry + workload + solver + sim knobs) with a
  stable :attr:`~ScenarioSpec.scenario_id` identity;
* :mod:`repro.experiments.generator` — grid sweeps, seeded random sampling,
  and named preset suites (``smoke``, ``scaling``, ``mix``, ``routing``,
  ``resilience``);
* :mod:`repro.experiments.runner`    — the batch orchestrator: spawn-based
  worker pool, per-run timeouts, crash isolation, structured failure capture;
* :mod:`repro.experiments.store`     — :class:`RunRecord` and the append-only
  JSONL :class:`ResultStore`.

Aggregation and regression reporting over result files live in
:mod:`repro.analysis.experiments`; ``repro sweep`` is the CLI front end.
"""

from .generator import (
    PRESET_SUITES,
    describe_suite,
    grid_scenarios,
    mix_suite,
    preset_scenarios,
    random_scenarios,
    resilience_suite,
    routing_suite,
    scaling_suite,
    smoke_suite,
)
from .runner import ScenarioTimeout, SweepOptions, execute_scenario, run_sweep
from .scenario import (
    SCENARIO_KINDS,
    SWEEPABLE_FIELDS,
    WORKLOAD_MIXES,
    ScenarioError,
    ScenarioSpec,
    parse_service_time,
)
from .store import (
    RUN_STATUSES,
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultStore,
    RunRecord,
    load_records,
)

__all__ = [
    "PRESET_SUITES",
    "RUN_STATUSES",
    "SCENARIO_KINDS",
    "STATUS_ERROR",
    "STATUS_INFEASIBLE",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SWEEPABLE_FIELDS",
    "WORKLOAD_MIXES",
    "ResultStore",
    "RunRecord",
    "ScenarioError",
    "ScenarioSpec",
    "ScenarioTimeout",
    "SweepOptions",
    "describe_suite",
    "execute_scenario",
    "grid_scenarios",
    "load_records",
    "mix_suite",
    "parse_service_time",
    "preset_scenarios",
    "random_scenarios",
    "resilience_suite",
    "routing_suite",
    "run_sweep",
    "scaling_suite",
    "smoke_suite",
]
