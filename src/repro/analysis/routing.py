"""Metrics and reports over grid-routed executions.

The grid-routed digital twin (:mod:`repro.sim.routing`) produces, per run, a
:class:`~repro.sim.routing.RoutingReport` — replans, search expansions,
per-edge traversal counts, and the path-length inflation against the
free-flow optimum.  This module condenses those into comparable rows:

* :func:`routing_row` / :func:`routing_comparison_table` — one row per
  router, the shape ``BENCH_routing.json`` and the CLI comparison print;
* :func:`render_edge_heatmap` — the per-edge congestion raster, drawn by
  projecting each edge's crossings onto its two endpoint cells (reusing the
  visit-count renderer's character ramp).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.routing import RoutingReport, edge_load_by_vertex
from ..warehouse.warehouse import Warehouse
from .reporting import format_markdown_table, format_table


def routing_row(report) -> Dict[str, float]:
    """Flatten one simulation report's routing outcome into plain numbers.

    ``report`` is a :class:`~repro.sim.runner.SimulationReport`; abstract
    runs (``report.routing is None``) produce a row with router ``abstract``
    and no congestion figures, so mixed sweeps stay comparable.
    """
    routing: Optional[RoutingReport] = report.routing
    row: Dict[str, float] = {
        "units_served": float(report.units_served),
        "throughput_ratio": float(report.throughput_ratio),
        "contract_violations": float(report.num_violations),
        "ticks": float(report.ticks),
        "plan_ticks": float(report.plan_ticks),
        "truncated": float(report.truncated),
    }
    if routing is None:
        row.update({"router": "abstract", "completed": 1.0, "status": "completed"})
        return row
    row.update(
        {
            "router": routing.router,
            "status": routing.status,
            "completed": float(routing.completed),
            "goals_completed": float(routing.goals_completed),
            "goals_total": float(routing.goals_total),
            "replans": float(routing.replans),
            "expansions": float(routing.expansions),
            "conflicts": float(routing.conflicts),
            "inflation": float(routing.inflation),
            "routed_cost": float(routing.routed_cost),
            "free_flow_cost": float(routing.free_flow_cost),
            "max_edge_load": float(routing.max_edge_load),
            "mean_edge_load": float(routing.mean_edge_load),
        }
    )
    return row


def routing_comparison_table(reports: Sequence, markdown: bool = False) -> str:
    """One row per simulation report: router vs. congestion and service.

    ``reports`` are :class:`~repro.sim.runner.SimulationReport` objects of the
    *same* solved instance executed under different routers — the comparison
    ``repro`` prints and ``BENCH_routing.json`` archives.
    """
    headers = [
        "Router",
        "Completed",
        "Ticks",
        "Inflation",
        "Replans",
        "Expansions",
        "Max Edge",
        "Served",
        "Ratio",
        "Violations",
    ]
    body: List[List[str]] = []
    for report in reports:
        row = routing_row(report)
        grid_routed = report.routing is not None
        body.append(
            [
                str(row["router"]),
                "yes" if row["completed"] else "NO",
                str(int(row["ticks"])),
                f"{row['inflation']:.3f}" if grid_routed and row["inflation"] else "-",
                str(int(row["replans"])) if grid_routed else "-",
                str(int(row["expansions"])) if grid_routed else "-",
                str(int(row["max_edge_load"])) if grid_routed else "-",
                str(int(row["units_served"])),
                f"{row['throughput_ratio']:.3f}",
                str(int(row["contract_violations"])),
            ]
        )
    if markdown:
        return format_markdown_table(body, headers)
    return format_table(body, headers, title="Router comparison")


def render_edge_heatmap(warehouse: Warehouse, edge_traversals: Dict) -> str:
    """ASCII heatmap of per-edge crossings, projected onto endpoint cells."""
    from .visualization import render_congestion  # local: avoid import cycle

    load = edge_load_by_vertex(warehouse.floorplan.num_vertices, edge_traversals)
    return render_congestion(warehouse, load)
