"""Metrics over simulated traces: realized vs. synthesized service quality.

Static :mod:`repro.analysis.metrics` scores a *plan*; this module scores an
*execution* — a :class:`~repro.sim.telemetry.SimulationTrace` produced by the
digital twin.  The headline quantity is the realized/synthesized throughput
ratio: 1.0 means the executed system delivers exactly what the contract-based
synthesis promised; below 1.0 quantifies how much the dynamics (service
queues, stochastic arrivals, stockouts) eat into the promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.telemetry import SimulationTrace


@dataclass(frozen=True)
class SimMetrics:
    """Aggregate statistics of one simulated execution."""

    ticks: int
    num_agents: int
    units_served: int
    units_handed_off: int
    station_backlog: int
    realized_throughput: float
    synthesized_throughput: float
    throughput_ratio: float
    orders_created: int
    orders_served: int
    mean_order_latency: Optional[float]
    p95_order_latency: Optional[float]
    mean_queue_length: float
    max_queue_length: int
    stockouts: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "ticks": self.ticks,
            "num_agents": self.num_agents,
            "units_served": self.units_served,
            "units_handed_off": self.units_handed_off,
            "station_backlog": self.station_backlog,
            "realized_throughput": self.realized_throughput,
            "synthesized_throughput": self.synthesized_throughput,
            "throughput_ratio": self.throughput_ratio,
            "orders_created": self.orders_created,
            "orders_served": self.orders_served,
            "mean_order_latency": (
                -1.0 if self.mean_order_latency is None else self.mean_order_latency
            ),
            "p95_order_latency": (
                -1.0 if self.p95_order_latency is None else self.p95_order_latency
            ),
            "mean_queue_length": self.mean_queue_length,
            "max_queue_length": self.max_queue_length,
            "stockouts": self.stockouts,
        }


def compute_sim_metrics(
    trace: SimulationTrace, synthesized_throughput: Optional[float] = None
) -> SimMetrics:
    """Condense a simulation trace into :class:`SimMetrics`.

    ``synthesized_throughput`` defaults to the value stamped into the trace
    metadata by the runner (0.0 when the run had no flow set to compare to).
    """
    if synthesized_throughput is None:
        synthesized_throughput = float(trace.metadata.get("synthesized_throughput", 0.0))
    realized = trace.realized_throughput()
    ratio = realized / synthesized_throughput if synthesized_throughput > 0 else 0.0
    return SimMetrics(
        ticks=trace.ticks,
        num_agents=trace.num_agents,
        units_served=trace.units_served,
        units_handed_off=trace.units_handed_off,
        station_backlog=trace.station_backlog,
        realized_throughput=realized,
        synthesized_throughput=synthesized_throughput,
        throughput_ratio=ratio,
        orders_created=trace.orders_created,
        orders_served=trace.orders_served,
        mean_order_latency=trace.mean_order_latency(),
        p95_order_latency=trace.p95_order_latency(),
        mean_queue_length=trace.mean_queue_length(),
        max_queue_length=trace.max_queue_length(),
        stockouts=trace.stockouts,
    )


def throughput_gap_report(metrics: SimMetrics, tolerance: float = 0.1) -> str:
    """One-line verdict on whether execution honored the synthesized promise."""
    if metrics.synthesized_throughput <= 0:
        return "no synthesized flow value to compare against"
    gap = 1.0 - metrics.throughput_ratio
    if abs(gap) <= tolerance:
        return (
            f"realized throughput within {tolerance:.0%} of the synthesized flow "
            f"(ratio {metrics.throughput_ratio:.3f})"
        )
    direction = "below" if gap > 0 else "above"
    return (
        f"realized throughput {abs(gap):.1%} {direction} the synthesized flow "
        f"(ratio {metrics.throughput_ratio:.3f}; backlog {metrics.station_backlog}, "
        f"stockouts {metrics.stockouts})"
    )
