"""``repro top`` — a curses-free ANSI live dashboard over the event stream.

Two sources, one screen:

* a **running service** — poll ``GET /dashboard`` (health + metrics + event
  tail in one JSON snapshot) and render pool saturation, cache hit-rate,
  request states, latency percentiles and the latest events;
* an **in-progress sweep** — tail the ``--events`` JSONL file the sweep (and
  its spawned workers) append to, and render completed/total, pass rate,
  throughput, ETA and live disruption/breach counts.

Everything here is a pure function from a snapshot document (or a list of
event dicts) to a frame string — the CLI loop just clears the screen and
reprints.  That keeps the renderer deterministic and unit-testable without a
terminal, and is why this sidesteps ``curses`` entirely: a frame is plain
text with optional ANSI color, so it also degrades cleanly when piped.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

#: ANSI SGR codes used by the renderer (kept to widely supported basics).
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RED = "\x1b[31m"
_CYAN = "\x1b[36m"

#: Clear screen + home — the CLI prepends this between live frames.
CLEAR_SCREEN = "\x1b[H\x1b[2J"

_LEVEL_COLOR = {"warning": _YELLOW, "error": _RED}


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def render_bar(fraction: float, width: int = 24, color: bool = True) -> str:
    """A ``[#####....] 42%`` gauge; green below 0.7, yellow below 0.9, red above."""
    fraction = min(1.0, max(0.0, float(fraction)))
    filled = round(fraction * width)
    bar = "#" * filled + "." * (width - filled)
    code = _GREEN if fraction < 0.7 else (_YELLOW if fraction < 0.9 else _RED)
    return f"[{_paint(bar, code, color)}] {fraction * 100:3.0f}%"


def _format_duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 90:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 90:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_events_tail(
    events: Sequence[Mapping], limit: int = 8, color: bool = True
) -> List[str]:
    """The newest events, one compact line each (level-colored)."""
    lines: List[str] = []
    for event in list(events)[-limit:]:
        level = str(event.get("level", "info"))
        kind = str(event.get("kind", "?"))
        message = str(event.get("message", ""))
        if not message:
            fields = event.get("fields", {})
            message = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
        component = str(event.get("component", ""))
        line = f"  {kind:<22s} {component:<8s} {message[:44]}"
        lines.append(_paint(line, _LEVEL_COLOR.get(level, _DIM), color))
    return lines


# ---------------------------------------------------------------------------
# service mode — one /dashboard JSON snapshot in, one frame out
# ---------------------------------------------------------------------------


def render_service_frame(snapshot: Mapping, color: bool = True) -> str:
    """Render a ``GET /dashboard`` document as one dashboard frame."""
    health = snapshot.get("health", {})
    metrics = snapshot.get("metrics", {})
    requests = metrics.get("requests", {})
    cache = metrics.get("cache", {})
    pool = metrics.get("pool", {})
    latency = metrics.get("latency_seconds", {})

    uptime = float(health.get("uptime_seconds", 0.0))
    capacity = max(1.0, float(pool.get("workers", 0)) + float(pool.get("max_pending", 0)))
    saturation = float(pool.get("in_flight", 0)) / capacity
    hit_rate = float(cache.get("hit_rate", 0.0))
    # The live cache snapshot splits hits by tier (memory / store / coalesced);
    # a plain "hits" key covers hand-built documents.
    cache_hits = int(
        cache.get(
            "hits",
            cache.get("hits_memory", 0)
            + cache.get("hits_store", 0)
            + cache.get("coalesced", 0),
        )
    )
    total = int(requests.get("total", 0))
    throughput = total / uptime if uptime > 0 else 0.0

    status = str(health.get("status", "?"))
    status_code = _GREEN if status == "ok" else _YELLOW
    title = _paint("repro service", _BOLD, color)
    lines = [
        f"{title}  {_paint(status, status_code, color)}"
        f"  v{health.get('version', '?')}  up {_format_duration(uptime)}"
        + ("  " + _paint("DRAINING", _RED, color) if health.get("draining") else ""),
        "",
        f"  pool  {render_bar(saturation, color=color)}  "
        f"in-flight {int(pool.get('in_flight', 0))}/{int(capacity)}  "
        f"workers {int(pool.get('workers', 0))}  "
        f"rejected {int(pool.get('rejected', 0))}",
        f"  cache {render_bar(hit_rate, color=color)}  "
        f"size {int(cache.get('size', 0))}  "
        f"hits {cache_hits}  misses {int(cache.get('misses', 0))}",
        "",
        f"  requests {total}  ({throughput:.2f}/s avg)  "
        + "  ".join(
            f"{state}={count}"
            for state, count in sorted(requests.get("by_state", {}).items())
        ),
    ]
    tiers = []
    for tier in ("cold", "warm", "coalesced"):
        summary = latency.get(tier) or {}
        if summary.get("count"):
            tiers.append(
                f"{tier} p50 {summary.get('p50', 0.0) * 1000:.1f}ms "
                f"p95 {summary.get('p95', 0.0) * 1000:.1f}ms "
                f"(n={int(summary.get('count', 0))})"
            )
    if tiers:
        lines.append("  latency  " + "   ".join(tiers))
    events = snapshot.get("events", [])
    if events:
        lines.append("")
        lines.append(_paint(f"  recent events (seq <= {snapshot.get('last_event_seq', '?')})", _CYAN, color))
        lines.extend(render_events_tail(events, color=color))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# sweep mode — the events JSONL aggregated into progress/ETA
# ---------------------------------------------------------------------------


def summarize_sweep_events(events: Sequence[Mapping], now: Optional[float] = None) -> Dict:
    """Fold a sweep's event stream into one progress document.

    ``now`` is the wall-clock used for elapsed/ETA while the sweep is still
    running (pass a fixed value for deterministic tests); once a
    ``sweep.finished`` event is present its timestamp wins.
    """
    summary: Dict = {
        "total": 0,
        "workers": 0,
        "completed": 0,
        "in_flight": 0,
        "statuses": {},
        "started_ts": None,
        "finished": False,
        "elapsed": 0.0,
        "eta": 0.0,
        "throughput": 0.0,
        "disruptions": 0,
        "recoveries": 0,
        "breaches": 0,
        "alerts": 0,
    }
    started_runs = 0
    last_ts = None
    for event in events:
        kind = event.get("kind", "")
        fields = event.get("fields", {})
        ts = float(event.get("ts", 0.0))
        if kind == "sweep.started":
            summary["total"] = int(fields.get("total", 0))
            summary["workers"] = int(fields.get("workers", 0))
            summary["started_ts"] = ts
        elif kind == "run.started":
            started_runs += 1
        elif kind == "sweep.progress":
            summary["completed"] = max(summary["completed"], int(fields.get("completed", 0)))
            status = str(fields.get("status", "?"))
            summary["statuses"][status] = summary["statuses"].get(status, 0) + 1
        elif kind == "sweep.finished":
            summary["finished"] = True
            last_ts = ts
        elif kind == "disruption.onset":
            summary["disruptions"] += 1
        elif kind == "disruption.recovered":
            summary["recoveries"] += 1
        elif kind == "contract.breach":
            summary["breaches"] += 1
        elif kind == "alert.fired":
            summary["alerts"] += 1
    summary["in_flight"] = max(0, started_runs - summary["completed"])
    if summary["started_ts"] is not None:
        end = last_ts if summary["finished"] and last_ts else now
        if end is not None:
            summary["elapsed"] = max(0.0, end - summary["started_ts"])
    completed, total = summary["completed"], summary["total"]
    if completed and summary["elapsed"] > 0:
        summary["throughput"] = completed / summary["elapsed"]
        if not summary["finished"] and total > completed:
            summary["eta"] = summary["elapsed"] / completed * (total - completed)
    return summary


def render_sweep_frame(
    events: Sequence[Mapping], now: Optional[float] = None, color: bool = True
) -> str:
    """Render a sweep's events file as one dashboard frame."""
    summary = summarize_sweep_events(events, now=now)
    total = summary["total"] or max(1, summary["completed"])
    fraction = summary["completed"] / total if total else 0.0
    ok = summary["statuses"].get("ok", 0)
    pass_rate = ok / summary["completed"] if summary["completed"] else 0.0

    state = "finished" if summary["finished"] else "running"
    state_code = _GREEN if summary["finished"] else _CYAN
    title = _paint("repro sweep", _BOLD, color)
    lines = [
        f"{title}  {_paint(state, state_code, color)}"
        f"  {summary['completed']}/{summary['total']} runs"
        f"  workers {summary['workers']}  in-flight {summary['in_flight']}",
        "",
        f"  progress {render_bar(fraction, color=color)}  "
        f"elapsed {_format_duration(summary['elapsed'])}"
        + ("" if summary["finished"] else f"  eta {_format_duration(summary['eta'])}"),
        f"  pass     {render_bar(pass_rate, color=color)}  "
        + "  ".join(f"{s}={n}" for s, n in sorted(summary["statuses"].items())),
        f"  rate     {summary['throughput'] * 60:.1f} runs/min",
    ]
    extras = []
    if summary["disruptions"]:
        extras.append(f"disruptions {summary['disruptions']} (recovered {summary['recoveries']})")
    if summary["breaches"]:
        extras.append(_paint(f"contract breaches {summary['breaches']}", _RED, color))
    if summary["alerts"]:
        extras.append(_paint(f"alerts fired {summary['alerts']}", _RED, color))
    if extras:
        lines.append("  " + "   ".join(extras))
    tail = [e for e in events if e.get("level") in ("warning", "error")]
    if tail:
        lines.append("")
        lines.append(_paint("  recent warnings/errors", _CYAN, color))
        lines.extend(render_events_tail(tail, limit=6, color=color))
    return "\n".join(lines) + "\n"


__all__ = [
    "CLEAR_SCREEN",
    "render_bar",
    "render_events_tail",
    "render_service_frame",
    "render_sweep_frame",
    "summarize_sweep_events",
]
