"""Metrics and reports over failure-injected (disrupted) simulation runs.

The resilience layer (:mod:`repro.sim.disruptions`) produces, per disrupted
run, a :class:`~repro.sim.disruptions.ResilienceReport` — injected disruption
counts, recovery actions, downtime accounting, throughput retention against
the nominal delivery profile, and contract-breach windows.  This module
condenses those into comparable artifacts:

* :func:`resilience_row` / :func:`resilience_comparison_table` — one row per
  disruption profile, the shape ``BENCH_resilience.json`` and the CLI print;
* :func:`render_disruption_timeline` — an ASCII density plot of disruption
  and recovery events over simulated time, drawn from the trace's event log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.telemetry import EV_DISRUPTION, EV_RECOVERY, SimulationTrace
from .reporting import format_markdown_table, format_table

#: Character ramp of the timeline density plot (space = no events).
_RAMP = " .:-=+*#%@"


def resilience_row(report) -> Dict[str, float]:
    """Flatten one simulation report's resilience outcome into plain numbers.

    ``report`` is a :class:`~repro.sim.runner.SimulationReport`; nominal runs
    (``report.resilience is None``) produce a row with retention 1.0 and zero
    disruption figures, so mixed sweeps stay comparable.
    """
    row: Dict[str, float] = {
        "units_served": float(report.units_served),
        "throughput_ratio": float(report.throughput_ratio),
        "contract_violations": float(report.num_violations),
        "ticks": float(report.ticks),
    }
    resilience = report.resilience
    if resilience is None:
        row.update({"disrupted": 0.0, "throughput_retention": 1.0})
        return row
    row.update(
        {
            "disrupted": 1.0,
            "throughput_retention": float(resilience.throughput_retention),
            "disruptions": float(resilience.num_disruptions),
            "breakdowns": float(resilience.breakdowns),
            "slowdowns": float(resilience.slowdowns),
            "outages": float(resilience.outages),
            "blocks": float(resilience.blocks),
            "surges": float(resilience.surges),
            "recoveries": float(resilience.num_recoveries),
            "repairs": float(resilience.repairs),
            "reassignments": float(resilience.reassignments),
            "reroutes": float(resilience.reroutes),
            "failovers": float(resilience.failovers),
            "mean_recovery_latency": float(resilience.mean_recovery_latency),
            "agent_downtime": float(resilience.agent_downtime),
            "station_downtime": float(resilience.station_downtime),
            "blocked_waits": float(resilience.blocked_waits),
            "conflict_waits": float(resilience.conflict_waits),
            "dropped_orders": float(resilience.dropped_orders),
            "late_orders": float(resilience.late_orders),
            "breach_windows": float(resilience.breach_windows),
        }
    )
    return row


def resilience_comparison_table(
    reports: Sequence,
    labels: Optional[Sequence[str]] = None,
    markdown: bool = False,
) -> str:
    """One row per run: disruption/recovery counts, retention, service quality.

    ``labels`` names the rows (defaults to each config's disruption spec).
    """
    headers = [
        "Profile",
        "Disrupt",
        "Recover",
        "Retention",
        "Served",
        "Downtime",
        "Latency",
        "Dropped",
        "Breaches",
        "Verdict",
    ]
    body: List[List[str]] = []
    for index, report in enumerate(reports):
        if labels is not None:
            label = labels[index]
        elif report.config.disruptions is not None:
            label = report.config.disruptions.describe()
        else:
            label = "nominal"
        resilience = report.resilience
        if resilience is None:
            body.append(
                [
                    label,
                    "-",
                    "-",
                    "1.000",
                    str(report.units_served),
                    "-",
                    "-",
                    "-",
                    "-",
                    "ok" if report.contracts_ok else f"{report.num_violations} breach",
                ]
            )
            continue
        body.append(
            [
                label,
                str(resilience.num_disruptions),
                str(resilience.num_recoveries),
                f"{resilience.throughput_retention:.3f}",
                str(report.units_served),
                str(resilience.agent_downtime),
                f"{resilience.mean_recovery_latency:.1f}",
                str(resilience.dropped_orders),
                str(resilience.breach_windows),
                "ok" if report.contracts_ok else f"{report.num_violations} breach",
            ]
        )
    if markdown:
        return format_markdown_table(body, headers)
    return format_table(body, headers, title="Resilience under failure injection")


def _event_density(trace: SimulationTrace, kind: str, buckets: int) -> List[int]:
    """Event-log counts of one event kind per time bucket."""
    counts = [0] * max(1, buckets)
    if not trace.events or trace.ticks <= 1:
        return counts
    width = max(1.0, (trace.ticks - 1) / len(counts))
    for event in trace.events:
        if event[0] == kind:
            bucket = min(len(counts) - 1, int(event[1] / width))
            counts[bucket] += 1
    return counts


def disruption_density(trace: SimulationTrace, buckets: int = 60) -> List[int]:
    """Disruption-event counts per time bucket, from the trace's event log."""
    return _event_density(trace, EV_DISRUPTION, buckets)


def render_disruption_timeline(trace: SimulationTrace, width: int = 60) -> str:
    """An ASCII density strip of disruptions (top) and recoveries (bottom).

    Requires the trace's event log (``record_events=True``); returns an
    explanatory placeholder otherwise.
    """
    if not trace.events:
        return "(no event log: disruption timeline unavailable)"

    def strip(kind: str) -> str:
        counts = _event_density(trace, kind, width)
        peak = max(counts)
        if peak == 0:
            return " " * len(counts)
        return "".join(
            _RAMP[min(len(_RAMP) - 1, (count * (len(_RAMP) - 1) + peak - 1) // peak)]
            for count in counts
        )

    return "\n".join(
        [
            f"t=0{' ' * (width - 8)}t={trace.ticks - 1}",
            f"|{strip(EV_DISRUPTION)}| disruptions",
            f"|{strip(EV_RECOVERY)}| recoveries",
        ]
    )
