"""Aggregation and regression reporting over experiment result files.

Consumes the :class:`~repro.experiments.store.RunRecord` lists produced by
:func:`repro.experiments.run_sweep` (or loaded back from JSONL) and renders:

* a per-run sweep table plus an aggregate summary (pass rates by status,
  runtime percentiles) — ``repro sweep --report``;
* scaling rows (map size vs. synthesis runtime) feeding
  :func:`~repro.analysis.reporting.scaling_report`;
* a comparison of two result files that flags status and runtime regressions
  scenario by scenario — ``repro sweep --compare`` and the perf gate every
  later optimisation PR measures itself against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .reporting import format_markdown_table, format_table
from .service import percentile as _percentile


@dataclass
class SweepSummary:
    """Aggregate view of one sweep's records."""

    total: int
    by_status: Dict[str, int]
    synthesis_p50: float
    synthesis_p90: float
    synthesis_max: float
    total_p50: float
    total_max: float
    units_delivered: int
    num_agents: int
    contract_breaches: int

    @property
    def pass_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.by_status.get("ok", 0) / self.total

    def summary(self) -> str:
        statuses = ", ".join(
            f"{status}={count}" for status, count in sorted(self.by_status.items())
        )
        return "\n".join(
            [
                f"sweep: {self.total} runs ({statuses}), pass rate {self.pass_rate:.0%}",
                f"  synthesis runtime:  p50 {self.synthesis_p50:.3f}s, "
                f"p90 {self.synthesis_p90:.3f}s, max {self.synthesis_max:.3f}s",
                f"  end-to-end runtime: p50 {self.total_p50:.3f}s, max {self.total_max:.3f}s",
                f"  delivered {self.units_delivered} units with {self.num_agents} agents "
                f"across all successful runs; {self.contract_breaches} contract breach(es)",
            ]
        )


def aggregate_sweep(records: Sequence) -> SweepSummary:
    """Condense run records into a :class:`SweepSummary`."""
    by_status: Dict[str, int] = {}
    for record in records:
        by_status[record.status] = by_status.get(record.status, 0) + 1
    ok = [r for r in records if r.ok]
    synthesis = [r.synthesis_seconds for r in ok]
    totals = [r.total_seconds for r in ok]
    return SweepSummary(
        total=len(records),
        by_status=by_status,
        synthesis_p50=_percentile(synthesis, 0.50),
        synthesis_p90=_percentile(synthesis, 0.90),
        synthesis_max=max(synthesis, default=0.0),
        total_p50=_percentile(totals, 0.50),
        total_max=max(totals, default=0.0),
        units_delivered=sum(r.units_delivered for r in ok),
        num_agents=sum(r.num_agents for r in ok),
        contract_breaches=sum(int(r.sim.get("contract_violations", 0)) for r in ok),
    )


def sweep_table(records: Sequence, markdown: bool = False) -> str:
    """One row per run: scenario, geometry, workload, outcome, runtimes."""
    headers = [
        "Scenario",
        "Kind",
        "Cells",
        "Units",
        "Status",
        "Agents",
        "Delivered",
        "Synthesis (s)",
        "Total (s)",
        "Sim Ratio",
        "Router",
        "Inflation",
        "Max Edge",
        "Disrupt",
        "Retention",
        "Recover",
    ]
    body: List[List[str]] = []
    for record in records:
        layout = record.spec.layout()
        ratio = record.throughput_ratio
        inflation = record.sim.get("routing_inflation")
        max_edge = record.sim.get("routing_max_edge_load")
        disruptions = record.sim.get("disruptions")
        retention = record.sim.get("throughput_retention")
        recoveries = record.sim.get("recoveries")
        body.append(
            [
                record.spec.label,
                record.spec.kind,
                str(layout.num_cells),
                str(record.spec.units),
                record.status,
                str(record.num_agents) if record.ok else "-",
                str(record.units_delivered) if record.ok else "-",
                f"{record.synthesis_seconds:.3f}" if record.ok else "-",
                f"{record.total_seconds:.3f}" if record.ok else "-",
                "-" if ratio is None else f"{ratio:.3f}",
                record.spec.router,
                # 0.0 means "undefined" (incomplete routing), not free-flow.
                "-" if not inflation else f"{inflation:.3f}",
                "-" if max_edge is None else str(int(max_edge)),
                "-" if disruptions is None else str(int(disruptions)),
                "-" if retention is None else f"{retention:.3f}",
                "-" if recoveries is None else str(int(recoveries)),
            ]
        )
    if markdown:
        return format_markdown_table(body, headers)
    return format_table(body, headers, title="Experiment sweep")


def sweep_report(records: Sequence, markdown: bool = False) -> str:
    """The full ``repro sweep --report`` payload: table + aggregate summary."""
    parts = [sweep_table(records, markdown=markdown), "", aggregate_sweep(records).summary()]
    failed = [r for r in records if not r.ok]
    if failed:
        parts.append("")
        parts.append("non-ok runs:")
        parts.extend(f"  {r.spec.label}: {r.status} — {r.message}".rstrip(" —") for r in failed)
    return "\n".join(parts)


def scaling_rows(records: Sequence) -> List[Tuple[str, int, float]]:
    """(kind, map cells, synthesis seconds) rows of the successful runs,
    sorted by size — the shape :func:`~repro.analysis.reporting.scaling_report`
    renders."""
    rows = [
        (record.spec.kind, record.spec.layout().num_cells, record.synthesis_seconds)
        for record in records
        if record.ok
    ]
    return sorted(rows, key=lambda row: (row[0], row[1]))


# ---------------------------------------------------------------------------
# regression comparison of two sweeps
# ---------------------------------------------------------------------------

@dataclass
class SweepComparison:
    """Scenario-by-scenario comparison of a candidate sweep to a baseline."""

    matched: int = 0
    status_regressions: List[str] = field(default_factory=list)
    status_fixes: List[str] = field(default_factory=list)
    runtime_regressions: List[str] = field(default_factory=list)
    result_changes: List[str] = field(default_factory=list)
    missing_scenarios: List[str] = field(default_factory=list)
    new_scenarios: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No regressions (new/missing scenarios and fixes are informational)."""
        return not (
            self.status_regressions or self.runtime_regressions or self.result_changes
        )

    def summary(self) -> str:
        lines = [
            f"compared {self.matched} scenario(s): "
            + ("no regressions" if self.ok else "REGRESSIONS FOUND")
        ]
        for title, entries in (
            ("status regressions", self.status_regressions),
            ("runtime regressions", self.runtime_regressions),
            ("result changes", self.result_changes),
            ("fixed since baseline", self.status_fixes),
            ("missing from candidate", self.missing_scenarios),
            ("new in candidate", self.new_scenarios),
        ):
            if entries:
                lines.append(f"{title}:")
                lines.extend(f"  {entry}" for entry in entries)
        return "\n".join(lines)


def compare_sweeps(
    baseline: Sequence,
    candidate: Sequence,
    runtime_factor: float = 1.5,
    min_seconds: float = 0.05,
) -> SweepComparison:
    """Flag scenarios that got worse between two sweeps.

    Records are matched by :attr:`scenario_id` (the latest record wins when a
    file holds repeats of the same scenario).  A *runtime regression* is a
    matched successful run whose synthesis time exceeded
    ``runtime_factor × baseline`` (ignored below ``min_seconds``, where timer
    noise dominates); a *result change* is a matched successful run whose
    deterministic outcome (agents, delivered units, contract verdict) moved.
    """
    if runtime_factor <= 0:
        raise ValueError("runtime_factor must be positive")
    base_by_id = {record.scenario_id: record for record in baseline}
    cand_by_id = {record.scenario_id: record for record in candidate}
    comparison = SweepComparison()

    for scenario_id, base in base_by_id.items():
        cand = cand_by_id.get(scenario_id)
        label = base.spec.label
        if cand is None:
            comparison.missing_scenarios.append(label)
            continue
        comparison.matched += 1
        if base.ok and not cand.ok:
            detail = f" ({cand.message})" if cand.message else ""
            comparison.status_regressions.append(f"{label}: ok -> {cand.status}{detail}")
            continue
        if not base.ok and cand.ok:
            comparison.status_fixes.append(f"{label}: {base.status} -> ok")
            continue
        if not (base.ok and cand.ok):
            # Both non-ok.  A structured result (infeasible) degrading into a
            # crash or hang is still a regression; the reverse is a partial
            # fix; an error<->timeout flip is a change worth failing the gate.
            if base.status != cand.status:
                transition = f"{label}: {base.status} -> {cand.status}"
                if cand.failed and not base.failed:
                    comparison.status_regressions.append(transition)
                elif base.failed and not cand.failed:
                    comparison.status_fixes.append(transition)
                else:
                    comparison.result_changes.append(transition)
            continue
        base_seconds = base.synthesis_seconds
        cand_seconds = cand.synthesis_seconds
        if cand_seconds > max(min_seconds, runtime_factor * base_seconds):
            comparison.runtime_regressions.append(
                f"{label}: synthesis {base_seconds:.3f}s -> {cand_seconds:.3f}s "
                f"(x{cand_seconds / max(base_seconds, 1e-9):.2f})"
            )
        changes = []
        if base.num_agents != cand.num_agents:
            changes.append(f"agents {base.num_agents} -> {cand.num_agents}")
        if base.units_delivered != cand.units_delivered:
            changes.append(f"delivered {base.units_delivered} -> {cand.units_delivered}")
        if base.contracts_ok != cand.contracts_ok:
            changes.append(f"contracts_ok {base.contracts_ok} -> {cand.contracts_ok}")
        if changes:
            comparison.result_changes.append(f"{label}: " + ", ".join(changes))

    for scenario_id, cand in cand_by_id.items():
        if scenario_id not in base_by_id:
            comparison.new_scenarios.append(cand.spec.label)
    return comparison
