"""Latency/throughput analysis for the serving layer.

Consumes the latency reservoirs and counter snapshots produced by
:mod:`repro.service` (the ``/metrics`` endpoint and the load-generator's
:class:`~repro.service.client.LoadTestReport`) and renders the serving
tables: per-phase latency percentiles, throughput, cache hit rate and
rejection rate — the numbers every future performance PR moves.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .reporting import format_markdown_table, format_table

#: The percentile fractions every latency summary reports.
LATENCY_FRACTIONS = (0.50, 0.90, 0.95)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def latency_summary(seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p95/mean/max of a latency sample, in seconds."""
    summary = {
        f"p{int(fraction * 100)}": percentile(seconds, fraction)
        for fraction in LATENCY_FRACTIONS
    }
    summary["mean"] = sum(seconds) / len(seconds) if seconds else 0.0
    summary["max"] = max(seconds) if seconds else 0.0
    summary["count"] = float(len(seconds))
    return summary


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}"


def latency_table(
    phases: Mapping[str, Sequence[float]], markdown: bool = False
) -> str:
    """One row per phase: request count and latency percentiles (ms)."""
    headers = ["phase", "requests", "p50 ms", "p90 ms", "p95 ms", "max ms"]
    rows: List[List[str]] = []
    for phase, seconds in phases.items():
        summary = latency_summary(seconds)
        rows.append(
            [
                phase,
                str(int(summary["count"])),
                _ms(summary["p50"]),
                _ms(summary["p90"]),
                _ms(summary["p95"]),
                _ms(summary["max"]),
            ]
        )
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


def service_table(metrics: Mapping, markdown: bool = False) -> str:
    """Headline serving counters from a ``/metrics`` snapshot."""
    cache = metrics.get("cache", {})
    pool = metrics.get("pool", {})
    requests = metrics.get("requests", {})
    headers = ["metric", "value"]
    rows = [
        ["requests served", str(int(requests.get("total", 0)))],
        ["cache hit rate", f"{float(cache.get('hit_rate', 0.0)):.1%}"],
        ["cache entries", str(int(cache.get("size", 0)))],
        ["coalesced requests", str(int(cache.get("coalesced", 0)))],
        ["pool in flight", str(int(pool.get("in_flight", 0)))],
        ["pool completed", str(int(pool.get("completed", 0)))],
        ["pool rejected", str(int(pool.get("rejected", 0)))],
    ]
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


def service_summary_table(service: Mapping, markdown: bool = False) -> str:
    """Server-side headline numbers condensed from the metrics registry."""
    headers = ["metric", "value"]
    runs = service.get("runs_by_status", {})
    rows = [
        ["cache hit rate", f"{float(service.get('cache_hit_rate', 0.0)):.1%}"],
        ["cache entries", str(int(service.get("cache_size", 0)))],
        ["pool saturation", f"{float(service.get('pool_saturation', 0.0)):.1%}"],
        ["pool in flight", str(int(service.get("pool_in_flight", 0)))],
        ["pool rejected", str(int(service.get("pool_rejected", 0)))],
        [
            "runs by status",
            ", ".join(f"{status}={count}" for status, count in sorted(runs.items()))
            or "-",
        ],
    ]
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


def saturation_table(points: Sequence[Mapping], markdown: bool = False) -> str:
    """The saturation curve: one row per (clients × workers × replicas) point."""
    headers = [
        "clients", "workers", "replicas", "req/s", "p50 ms", "p99 ms",
        "errors", "rejections",
    ]
    rows = [
        [
            str(int(point.get("clients", 0))),
            str(int(point.get("http_workers", 1))),
            str(int(point.get("replicas", 1))),
            f"{float(point.get('throughput_rps', 0.0)):.0f}",
            f"{float(point.get('p50_ms', 0.0)):.2f}",
            f"{float(point.get('p99_ms', 0.0)):.2f}",
            str(int(point.get("errors", 0))),
            str(int(point.get("rejections", 0))),
        ]
        for point in points
    ]
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


def loadtest_report(report, markdown: bool = False) -> str:
    """Render a :class:`~repro.service.client.LoadTestReport` as tables."""
    lines = [report.headline(), "", latency_table(report.phase_latencies, markdown=markdown)]
    saturation = getattr(report, "saturation", None)
    if saturation:
        lines += ["", "saturation curve (warm, duration-bounded):"]
        lines.append(saturation_table(saturation, markdown=markdown))
    service = getattr(report, "service", None)
    if service:
        lines += ["", "service-side (from the metrics registry):"]
        lines.append(service_summary_table(service, markdown=markdown))
    return "\n".join(lines)
