"""Rendering for :mod:`repro.obs` trace documents.

Consumes the deterministic ``obs-trace`` documents produced by
:func:`repro.obs.capture_trace` / :attr:`SimulationTrace.obs` and renders
them for humans:

* :func:`span_tree_table` — the flamegraph, sideways: one row per span in
  depth-first order, indented by nesting depth, with total/self wall time
  and the span's phase timers inlined underneath;
* :func:`hotspot_report`  — spans aggregated by name (calls, total, self
  seconds), sorted by self time: where the wall-clock actually went.

Both take the serialized document rather than live ``Span`` objects so they
work equally on a trace captured seconds ago or loaded from a JSON file
saved by ``repro profile --save-trace``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from .reporting import format_markdown_table, format_table


def iter_spans(document: Mapping) -> Iterator[Tuple[int, Dict]]:
    """Yield ``(depth, span_dict)`` over a trace document, depth first.

    Accepts either a full ``obs-trace`` document (``{"spans": [...]}``) or a
    single serialized span.
    """
    roots = document.get("spans") if "spans" in document else [document]

    def walk(node: Mapping, depth: int) -> Iterator[Tuple[int, Dict]]:
        yield depth, dict(node)
        for child in node.get("children", []):
            yield from walk(child, depth + 1)

    for root in roots or []:
        yield from walk(root, 0)


def _self_seconds(node: Mapping) -> float:
    children = sum(child.get("duration", 0.0) for child in node.get("children", []))
    return max(0.0, node.get("duration", 0.0) - children)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def _format_counters(counters: Mapping) -> str:
    parts = []
    for name, value in sorted(counters.items()):
        if float(value).is_integer():
            parts.append(f"{name}={int(value)}")
        else:
            parts.append(f"{name}={value:.3f}")
    return ", ".join(parts)


def span_tree_table(document: Mapping, markdown: bool = False) -> str:
    """One row per span, indented by depth; phase timers as sub-rows."""
    headers = ["span", "total ms", "self ms", "counters"]
    rows: List[List[str]] = []
    for depth, node in iter_spans(document):
        indent = "  " * depth
        rows.append(
            [
                f"{indent}{node.get('name', '?')}",
                _ms(node.get("duration", 0.0)),
                _ms(_self_seconds(node)),
                _format_counters(node.get("counters", {})) or "-",
            ]
        )
        for phase, seconds in sorted(node.get("phases", {}).items()):
            rows.append([f"{indent}  · {phase}", _ms(seconds), "", ""])
    if not rows:
        return "(empty trace)"
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


def hotspot_report(document: Mapping, top: int = 10, markdown: bool = False) -> str:
    """Spans aggregated by name, sorted by self time — the top-k hotspots."""
    totals: Dict[str, Dict[str, float]] = {}
    for _, node in iter_spans(document):
        entry = totals.setdefault(
            node.get("name", "?"), {"calls": 0.0, "total": 0.0, "self": 0.0}
        )
        entry["calls"] += 1
        entry["total"] += node.get("duration", 0.0)
        entry["self"] += _self_seconds(node)
    ranked = sorted(totals.items(), key=lambda item: (-item[1]["self"], item[0]))
    headers = ["span", "calls", "total ms", "self ms", "self %"]
    grand_self = sum(entry["self"] for entry in totals.values()) or 1.0
    rows = [
        [
            name,
            str(int(entry["calls"])),
            _ms(entry["total"]),
            _ms(entry["self"]),
            f"{entry['self'] / grand_self:.1%}",
        ]
        for name, entry in ranked[: max(1, top)]
    ]
    if not rows:
        return "(empty trace)"
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers)


__all__ = ["hotspot_report", "iter_spans", "span_tree_table"]
