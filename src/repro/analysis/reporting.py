"""Report formatting: Table-I-style benchmark tables and comparison summaries.

The benchmark harness collects one :class:`BenchmarkRow` per WSP instance and
renders them the way the paper's Table I does (map, unique products, units
moved, runtime), side by side with the paper's reported numbers where
available, plus the plan-level verification columns the paper does not print
(units actually delivered by the realized plan, feasibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class BenchmarkRow:
    """One Table-I-style row."""

    map_name: str
    unique_products: int
    units_moved: int
    runtime_seconds: float
    paper_runtime_seconds: Optional[float] = None
    num_agents: int = 0
    units_delivered: int = 0
    plan_feasible: Optional[bool] = None
    workload_serviced: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)


#: Paper Table I, for side-by-side reporting: (map, products, units) -> runtime (s).
PAPER_TABLE1: Dict[Tuple[str, int, int], float] = {
    ("sorting-center", 36, 160): 8.054,
    ("sorting-center", 36, 320): 8.343,
    ("sorting-center", 36, 480): 14.437,
    ("fulfillment-1", 55, 550): 6.939,
    ("fulfillment-1", 55, 825): 7.001,
    ("fulfillment-1", 55, 1100): 8.014,
    ("fulfillment-2", 120, 1200): 65.880,
    ("fulfillment-2", 120, 1320): 65.886,
    ("fulfillment-2", 120, 1440): 67.825,
}


def paper_runtime(map_name: str, products: int, units: int) -> Optional[float]:
    """The paper's Table-I runtime for an instance, if it reports one."""
    return PAPER_TABLE1.get((map_name, products, units))


def format_table(
    rows: Sequence[Sequence[str]], headers: Sequence[str], title: str = ""
) -> str:
    """Plain-text table with aligned columns (no external dependencies)."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    normalized = [[str(cell) for cell in row] for row in rows]
    for row in normalized:
        if len(row) != columns:
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in normalized)
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Sequence[str]], headers: Sequence[str]) -> str:
    """GitHub-flavoured markdown table (used to fill EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def table1_report(rows: Sequence[BenchmarkRow], markdown: bool = False) -> str:
    """Render benchmark rows in the paper's Table-I format (plus verification)."""
    headers = [
        "Map",
        "Unique Products",
        "Units Moved",
        "Runtime (s)",
        "Paper Runtime (s)",
        "Agents",
        "Delivered",
        "Feasible",
        "Serviced",
    ]
    body: List[List[str]] = []
    for row in rows:
        paper = row.paper_runtime_seconds
        if paper is None:
            paper = paper_runtime(row.map_name, row.unique_products, row.units_moved)
        body.append(
            [
                row.map_name,
                str(row.unique_products),
                str(row.units_moved),
                f"{row.runtime_seconds:.3f}",
                "-" if paper is None else f"{paper:.3f}",
                str(row.num_agents),
                str(row.units_delivered),
                "-" if row.plan_feasible is None else ("yes" if row.plan_feasible else "NO"),
                "-" if row.workload_serviced is None else ("yes" if row.workload_serviced else "NO"),
            ]
        )
    if markdown:
        return format_markdown_table(body, headers)
    return format_table(body, headers, title="Table I — benchmark of the methodology")


def scaling_report(
    rows: Sequence[Tuple[str, int, float]], markdown: bool = False
) -> str:
    """Render (label, size, runtime) scaling sweeps (baseline comparison, ablations)."""
    headers = ["Configuration", "Size", "Runtime (s)"]
    body = [[label, str(size), f"{runtime:.3f}"] for label, size, runtime in rows]
    if markdown:
        return format_markdown_table(body, headers)
    return format_table(body, headers)
