"""Reports over ``optimize-report`` documents (campaign results).

All functions consume the plain-dict form —
:meth:`repro.optimize.CampaignResult.to_dict`, the ``report`` field of
``GET /optimize/status/<id>``, or a JSON file written by
``repro optimize --out`` — so saved campaigns render exactly like live ones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .reporting import format_markdown_table, format_table

#: Ramp used by the convergence strip (low → high score within the campaign).
_RAMP = " .:-=+*#%@"


def _steps(report: Dict) -> List[Dict]:
    return list(report.get("steps") or [])


def convergence_rows(report: Dict) -> List[Dict]:
    """One flat row per step: the convergence trajectory as plain numbers."""
    rows: List[Dict] = []
    for step in _steps(report):
        rows.append(
            {
                "step": int(step["step"]),
                "evaluations": int(step["evaluations"]),
                "chosen_score": float(step["chosen_score"]),
                "current_score": float(step["current_score"]),
                "best_score": float(step["best_score"]),
                "accepted": bool(step["accepted"]),
                "improved": bool(step["improved"]),
                "temperature": float(step["temperature"]),
            }
        )
    return rows


def convergence_table(report: Dict, markdown: bool = False) -> str:
    """Step-by-step trajectory: chosen vs. current vs. best score."""
    headers = ["Step", "Evals", "Chosen", "Accepted", "Current", "Best", "Temp"]
    rows = [
        [
            row["step"],
            row["evaluations"],
            f"{row['chosen_score']:.4f}",
            "yes" if row["accepted"] else "no",
            f"{row['current_score']:.4f}",
            f"{row['best_score']:.4f}" + (" *" if row["improved"] else ""),
            f"{row['temperature']:.4f}",
        ]
        for row in convergence_rows(report)
    ]
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers, title="Convergence (* = new best)")


def render_convergence(report: Dict, width: int = 60) -> str:
    """A two-strip ASCII trace of the campaign: best score and chosen score.

    Each column is one step (campaigns longer than ``width`` are resampled);
    the glyph height maps the score's position between the campaign's worst
    and best observed chosen scores, so a climb reads as a rising ramp.
    """
    steps = _steps(report)
    if not steps:
        return "(no steps: the budget covered only the baseline)"
    best = [float(step["best_score"]) for step in steps]
    chosen = [float(step["chosen_score"]) for step in steps]
    baseline = float(report.get("baseline", {}).get("score", best[0]))
    low = min(chosen + best + [baseline])
    high = max(chosen + best + [baseline])
    span = high - low

    def strip(values: Sequence[float]) -> str:
        columns = len(values)
        if columns > width:  # resample: last value of each bucket
            values = [
                values[min(columns - 1, ((index + 1) * columns) // width - 1)]
                for index in range(width)
            ]
        if span <= 0:
            return "-" * len(values)
        return "".join(
            _RAMP[
                min(
                    len(_RAMP) - 1,
                    int((value - low) / span * (len(_RAMP) - 1) + 0.5),
                )
            ]
            for value in values
        )

    lines = [
        f"best    |{strip(best)}|  {best[-1]:.4f}",
        f"chosen  |{strip(chosen)}|  {chosen[-1]:.4f}",
        f"         baseline {baseline:.4f} -> best {best[-1]:.4f} "
        f"over {len(steps)} steps",
    ]
    return "\n".join(lines)


def acceptance_stats(report: Dict) -> Dict[str, float]:
    """Acceptance/improvement aggregates plus cache behaviour for one campaign."""
    steps = _steps(report)
    accepted = sum(1 for step in steps if step["accepted"])
    improved = sum(1 for step in steps if step["improved"])
    cache = report.get("cache") or {}
    return {
        "steps": float(len(steps)),
        "evaluations": float(report.get("evaluations", 0)),
        "accepted": float(accepted),
        "improved": float(improved),
        "acceptance_rate": accepted / len(steps) if steps else 0.0,
        "improvement_rate": improved / len(steps) if steps else 0.0,
        "cache_hits": float(cache.get("hits", 0.0)),
        "cache_hit_rate": float(cache.get("hit_rate", 0.0)),
        "seconds": float(report.get("seconds", 0.0)),
    }


def best_vs_baseline_table(report: Dict, markdown: bool = False) -> str:
    """The headline comparison: seed design vs. tuned design."""
    baseline = report.get("baseline") or {}
    best = report.get("best") or {}
    baseline_score = float(baseline.get("score", 0.0))
    best_score = float(best.get("score", 0.0))
    gain = best_score - baseline_score
    relative = (gain / abs(baseline_score) * 100.0) if baseline_score else 0.0
    headers = ["Design", "Scenario", "Score", "Gain"]
    rows = [
        ["baseline", baseline.get("scenario_id", "?"), f"{baseline_score:.4f}", ""],
        [
            "best",
            best.get("scenario_id", "?"),
            f"{best_score:.4f}",
            f"{gain:+.4f} ({relative:+.1f}%)",
        ],
    ]
    if markdown:
        return format_markdown_table(rows, headers)
    return format_table(rows, headers, title="Best vs. baseline")


def optimize_report(report: Dict, markdown: bool = False, width: int = 60) -> str:
    """The full campaign report ``repro optimize --report`` prints."""
    optimizer = report.get("optimizer") or {}
    objective = report.get("objective") or {}
    stats = acceptance_stats(report)
    header = (
        f"campaign: {optimizer.get('name', '?')} / {objective.get('name', '?')}"
        f"  seed={report.get('seed')}  budget={report.get('budget')}"
        f"  evaluations={int(stats['evaluations'])}"
    )
    summary = (
        f"accepted {int(stats['accepted'])}/{int(stats['steps'])} steps "
        f"({stats['acceptance_rate'] * 100:.0f}%), "
        f"{int(stats['improved'])} improvements, "
        f"cache hit-rate {stats['cache_hit_rate'] * 100:.0f}%, "
        f"{stats['seconds']:.1f}s"
    )
    sections = [
        header,
        "",
        best_vs_baseline_table(report, markdown=markdown),
        "",
        convergence_table(report, markdown=markdown),
        "",
    ]
    if not markdown:
        sections.extend([render_convergence(report, width=width), ""])
    sections.append(summary)
    return "\n".join(sections)
