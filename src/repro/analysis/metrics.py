"""Plan- and solution-level metrics used by reports, examples and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..warehouse.plan import Plan
from ..warehouse.products import EMPTY_HANDED
from ..warehouse.workload import Workload


@dataclass(frozen=True)
class PlanMetrics:
    """Aggregate statistics of one realized plan.

    Attributes
    ----------
    num_agents, horizon:
        Team size and plan length in timesteps.
    units_delivered:
        Total units dropped off at stations.
    service_makespan:
        First timestep by which the given workload is fully serviced
        (``None`` when the plan never services it).
    throughput:
        Units delivered per timestep over the whole plan.
    move_ratio:
        Fraction of agent-timesteps spent moving (vs. waiting).
    loaded_ratio:
        Fraction of agent-timesteps spent carrying a product.
    total_distance:
        Total number of cell moves across all agents.
    """

    num_agents: int
    horizon: int
    units_delivered: int
    service_makespan: Optional[int]
    throughput: float
    move_ratio: float
    loaded_ratio: float
    total_distance: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_agents": self.num_agents,
            "horizon": self.horizon,
            "units_delivered": self.units_delivered,
            "service_makespan": -1 if self.service_makespan is None else self.service_makespan,
            "throughput": self.throughput,
            "move_ratio": self.move_ratio,
            "loaded_ratio": self.loaded_ratio,
            "total_distance": self.total_distance,
        }


def service_makespan(plan: Plan, workload: Workload) -> Optional[int]:
    """The first timestep by which every demanded unit has reached a station."""
    remaining = dict(workload.as_dict())
    if not remaining:
        return 0
    outstanding = sum(remaining.values())
    deliveries = sorted(plan.deliveries(), key=lambda item: item[1])
    for _, timestep, product in deliveries:
        if remaining.get(product, 0) > 0:
            remaining[product] -= 1
            outstanding -= 1
            if outstanding == 0:
                return timestep
    return None


def compute_plan_metrics(plan: Plan, workload: Optional[Workload] = None) -> PlanMetrics:
    """Compute :class:`PlanMetrics` for a plan (optionally against a workload)."""
    positions = plan.positions
    moves = positions[:, 1:] != positions[:, :-1]
    total_distance = int(moves.sum())
    agent_steps = plan.num_agents * max(1, plan.horizon - 1)
    loaded_steps = int((plan.carrying != EMPTY_HANDED).sum())
    delivered = plan.total_delivered()
    makespan = service_makespan(plan, workload) if workload is not None else None
    return PlanMetrics(
        num_agents=plan.num_agents,
        horizon=plan.horizon,
        units_delivered=delivered,
        service_makespan=makespan,
        throughput=delivered / max(1, plan.horizon - 1),
        move_ratio=total_distance / agent_steps,
        loaded_ratio=loaded_steps / (plan.num_agents * plan.horizon),
        total_distance=total_distance,
    )


def agent_utilization(plan: Plan) -> np.ndarray:
    """Per-agent fraction of timesteps spent moving."""
    moves = plan.positions[:, 1:] != plan.positions[:, :-1]
    return moves.mean(axis=1)
