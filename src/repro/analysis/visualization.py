"""ASCII visualization of maps, traffic systems and plans.

The paper's Fig. 4 / Fig. 5 render the traffic system on top of the warehouse
map: every component cell shows an arrow pointing to the next vertex of its
component and every component exit ("tail") is highlighted.  These helpers
reproduce that view in plain text so examples and reports can embed it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..traffic.system import TrafficSystem
from ..warehouse.grid import EMPTY, OBSTACLE, SHELF, STATION, GridMap
from ..warehouse.plan import Plan
from ..warehouse.warehouse import Warehouse

#: Characters used when rendering a traffic system on top of a grid.
ARROWS = {(1, 0): ">", (-1, 0): "<", (0, 1): "^", (0, -1): "v"}
EXIT_MARK = "!"
UNUSED_MARK = "."
CELL_CHARS = {SHELF: "#", STATION: "T", OBSTACLE: "@", EMPTY: "."}
#: Heat ramp for the congestion view (cold -> hot; avoids the map glyphs #@T).
HEAT_LEVELS = " .:-=+*%$"


def render_grid(grid: GridMap) -> str:
    """The plain map (shelves ``#``, stations ``T``, obstacles ``@``)."""
    rows = []
    for y in range(grid.height - 1, -1, -1):
        rows.append("".join(CELL_CHARS[grid.cell_type((x, y))] for x in range(grid.width)))
    return "\n".join(rows)


def render_traffic_system(system: TrafficSystem) -> str:
    """The Fig. 4 / Fig. 5 view: arrows along components, ``!`` at exits.

    Cells outside every component keep their map character; shelf and obstacle
    cells are drawn as ``#`` and ``@``.
    """
    grid = system.warehouse.grid
    if grid is None:
        raise ValueError("the warehouse has no grid attached; cannot render")
    floorplan = system.floorplan
    overlay: Dict[tuple, str] = {}
    for component in system.components:
        for position, vertex in enumerate(component.vertices):
            cell = floorplan.cell_of(vertex)
            if position == component.length - 1:
                overlay[cell] = EXIT_MARK
            else:
                nxt = floorplan.cell_of(component.vertices[position + 1])
                delta = (nxt[0] - cell[0], nxt[1] - cell[1])
                overlay[cell] = ARROWS.get(delta, "?")
    rows = []
    for y in range(grid.height - 1, -1, -1):
        row = []
        for x in range(grid.width):
            cell = (x, y)
            kind = grid.cell_type(cell)
            if kind == SHELF:
                row.append("#")
            elif kind == OBSTACLE:
                row.append("@")
            elif cell in overlay:
                row.append(overlay[cell])
            elif kind == STATION:
                row.append("T")
            else:
                row.append(UNUSED_MARK)
        rows.append("".join(row))
    return "\n".join(rows)


def render_plan_frame(plan: Plan, timestep: int) -> str:
    """A snapshot of the warehouse at one timestep of a plan.

    Agents are drawn as ``a`` (empty-handed) or ``A`` (carrying); the rest of
    the map uses the grid characters.
    """
    warehouse = plan.warehouse
    grid = warehouse.grid
    if grid is None:
        raise ValueError("the warehouse has no grid attached; cannot render")
    if not 0 <= timestep < plan.horizon:
        raise ValueError(f"timestep {timestep} outside plan horizon {plan.horizon}")
    floorplan = warehouse.floorplan
    agents: Dict[tuple, str] = {}
    for agent in range(plan.num_agents):
        cell = floorplan.cell_of(int(plan.positions[agent, timestep]))
        carrying = int(plan.carrying[agent, timestep])
        agents[cell] = "A" if carrying else "a"
    rows = []
    for y in range(grid.height - 1, -1, -1):
        row = []
        for x in range(grid.width):
            cell = (x, y)
            if cell in agents:
                row.append(agents[cell])
            else:
                row.append(CELL_CHARS[grid.cell_type(cell)])
        rows.append("".join(row))
    return "\n".join(rows)


def render_congestion(warehouse: Warehouse, visits: Sequence[int]) -> str:
    """A traffic heatmap: per-vertex visit counts binned onto a character ramp.

    ``visits`` is indexed by floorplan vertex id (the simulation trace's
    :attr:`~repro.sim.telemetry.SimulationTrace.visits` array).  Shelf and
    obstacle cells keep their map characters; traversable cells show how much
    agent traffic they carried, from `` `` (none) to ``$`` (hottest cell).
    """
    grid = warehouse.grid
    if grid is None:
        raise ValueError("the warehouse has no grid attached; cannot render")
    floorplan = warehouse.floorplan
    counts = np.asarray(visits, dtype=float)
    if counts.shape[0] != floorplan.num_vertices:
        raise ValueError(
            f"visits covers {counts.shape[0]} vertices, the floorplan has "
            f"{floorplan.num_vertices}"
        )
    hottest = counts.max() if counts.size else 0.0
    rows = []
    for y in range(grid.height - 1, -1, -1):
        row = []
        for x in range(grid.width):
            cell = (x, y)
            kind = grid.cell_type(cell)
            if kind in (SHELF, OBSTACLE):
                row.append(CELL_CHARS[kind])
                continue
            vertex = floorplan.vertex_at(cell)
            if hottest <= 0 or counts[vertex] <= 0:
                row.append(HEAT_LEVELS[0] if kind != STATION else "T")
                continue
            level = int(round(counts[vertex] / hottest * (len(HEAT_LEVELS) - 1)))
            row.append(HEAT_LEVELS[max(1, level)])
        rows.append("".join(row))
    return "\n".join(rows)


def render_component_legend(system: TrafficSystem, max_components: Optional[int] = None) -> str:
    """A per-component legend (name, kind, length, connections)."""
    lines = []
    components = system.components
    if max_components is not None:
        components = components[:max_components]
    for component in components:
        outlets = ", ".join(
            system.component(o).name for o in system.outlets_of(component.index)
        )
        lines.append(
            f"{component.name:<28s} {component.kind.value:<13s} "
            f"len={component.length:<4d} -> {outlets or '(none)'}"
        )
    if max_components is not None and len(system.components) > max_components:
        lines.append(f"... (+{len(system.components) - max_components} more components)")
    return "\n".join(lines)
