"""Metrics, report formatting and ASCII visualization."""

from .metrics import PlanMetrics, agent_utilization, compute_plan_metrics, service_makespan
from .reporting import (
    PAPER_TABLE1,
    BenchmarkRow,
    format_markdown_table,
    format_table,
    paper_runtime,
    scaling_report,
    table1_report,
)
from .sim_metrics import SimMetrics, compute_sim_metrics, throughput_gap_report
from .visualization import (
    render_component_legend,
    render_congestion,
    render_grid,
    render_plan_frame,
    render_traffic_system,
)

__all__ = [
    "BenchmarkRow",
    "PAPER_TABLE1",
    "PlanMetrics",
    "SimMetrics",
    "agent_utilization",
    "compute_plan_metrics",
    "compute_sim_metrics",
    "format_markdown_table",
    "format_table",
    "paper_runtime",
    "render_component_legend",
    "render_congestion",
    "render_grid",
    "render_plan_frame",
    "render_traffic_system",
    "scaling_report",
    "service_makespan",
    "table1_report",
    "throughput_gap_report",
]
