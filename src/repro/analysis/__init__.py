"""Metrics, report formatting and ASCII visualization."""

from .dashboard import (
    CLEAR_SCREEN,
    render_bar,
    render_events_tail,
    render_service_frame,
    render_sweep_frame,
    summarize_sweep_events,
)
from .experiments import (
    SweepComparison,
    SweepSummary,
    aggregate_sweep,
    compare_sweeps,
    scaling_rows,
    sweep_report,
    sweep_table,
)
from .metrics import PlanMetrics, agent_utilization, compute_plan_metrics, service_makespan
from .obs import hotspot_report, iter_spans, span_tree_table
from .reporting import (
    PAPER_TABLE1,
    BenchmarkRow,
    format_markdown_table,
    format_table,
    paper_runtime,
    scaling_report,
    table1_report,
)
from .resilience import (
    disruption_density,
    render_disruption_timeline,
    resilience_comparison_table,
    resilience_row,
)
from .routing import render_edge_heatmap, routing_comparison_table, routing_row
from .service import (
    latency_summary,
    latency_table,
    loadtest_report,
    percentile,
    saturation_table,
    service_summary_table,
    service_table,
)
from .sim_metrics import SimMetrics, compute_sim_metrics, throughput_gap_report
from .visualization import (
    render_component_legend,
    render_congestion,
    render_grid,
    render_plan_frame,
    render_traffic_system,
)

__all__ = [
    "BenchmarkRow",
    "CLEAR_SCREEN",
    "PAPER_TABLE1",
    "render_bar",
    "render_events_tail",
    "render_service_frame",
    "render_sweep_frame",
    "summarize_sweep_events",
    "PlanMetrics",
    "SimMetrics",
    "SweepComparison",
    "SweepSummary",
    "agent_utilization",
    "aggregate_sweep",
    "compare_sweeps",
    "compute_plan_metrics",
    "compute_sim_metrics",
    "disruption_density",
    "format_markdown_table",
    "format_table",
    "hotspot_report",
    "iter_spans",
    "latency_summary",
    "latency_table",
    "loadtest_report",
    "paper_runtime",
    "percentile",
    "render_component_legend",
    "render_congestion",
    "render_disruption_timeline",
    "render_edge_heatmap",
    "render_grid",
    "render_plan_frame",
    "render_traffic_system",
    "resilience_comparison_table",
    "resilience_row",
    "routing_comparison_table",
    "routing_row",
    "saturation_table",
    "scaling_report",
    "scaling_rows",
    "service_makespan",
    "service_summary_table",
    "service_table",
    "span_tree_table",
    "sweep_report",
    "sweep_table",
    "table1_report",
    "throughput_gap_report",
]
