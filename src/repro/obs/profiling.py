"""Profiling hooks: cProfile harness behind ``repro profile``.

:func:`profile_call` runs any callable under :mod:`cProfile` *and* the span
tracer at once, so one invocation yields both views of the same run: the
span tree says where the pipeline's architectural phases spend their time,
the C-level profile says which functions burn it.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tracing import TraceCapture, capture_trace


@dataclass
class ProfileResult:
    """Everything one profiled invocation produced."""

    #: The profiled callable's own return value.
    value: Any
    #: Root spans captured during the call (serialize with ``trace.to_dict()``).
    trace: TraceCapture
    #: The raw profiler (``None`` when cProfile was skipped).
    profiler: Optional[cProfile.Profile] = None
    #: Top functions as (ncalls, tottime, cumtime, location) rows.
    hot_functions: List[Tuple[str, float, float, str]] = field(default_factory=list)

    def function_table(self, top: int = 15, sort: str = "cumulative") -> str:
        """The cProfile top-``top`` functions by ``sort`` order, as text."""
        if self.profiler is None:
            return "(cProfile disabled)"
        stream = io.StringIO()
        stats = pstats.Stats(self.profiler, stream=stream)
        stats.sort_stats(sort).print_stats(top)
        # Drop the pstats preamble (file list + ordering chatter) to the table.
        lines = stream.getvalue().splitlines()
        start = next(
            (i for i, line in enumerate(lines) if line.lstrip().startswith("ncalls")),
            0,
        )
        return "\n".join(line.rstrip() for line in lines[start:] if line.strip())


def _extract_hot_functions(
    stats: pstats.Stats, top: int
) -> List[Tuple[str, float, float, str]]:
    rows: List[Tuple[str, float, float, str]] = []
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True  # cumtime
    )
    for (filename, lineno, funcname), (_cc, ncalls, tottime, cumtime, _callers) in entries[:top]:
        rows.append((f"{ncalls}", tottime, cumtime, f"{funcname} ({filename}:{lineno})"))
    return rows


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    use_cprofile: bool = True,
    top: int = 15,
    **kwargs: Any,
) -> ProfileResult:
    """Run ``fn`` under the span tracer (and optionally cProfile).

    Tracing is enabled for the duration of the call via
    :func:`~repro.obs.tracing.capture_trace`, so every ``span(...)`` the
    pipeline opens lands in the result's trace — no caller plumbing needed.
    """
    profiler = cProfile.Profile() if use_cprofile else None
    with capture_trace() as trace:
        if profiler is not None:
            profiler.enable()
        try:
            value = fn(*args, **kwargs)
        finally:
            if profiler is not None:
                profiler.disable()
    result = ProfileResult(value=value, trace=trace, profiler=profiler)
    if profiler is not None:
        result.hot_functions = _extract_hot_functions(pstats.Stats(profiler), top)
    return result


def span_phase_totals(trace_document: Dict, name_prefix: str = "") -> Dict[str, float]:
    """Aggregate phase timers across every span whose name has ``name_prefix``.

    Used by the benchmark harness to sum e.g. the ``mapf.cbs`` phase timers
    (heuristic / low_level / conflict_detection / ct_management) over all
    routing episodes of a run.
    """
    totals: Dict[str, float] = {}

    def visit(document: Dict) -> None:
        if document["name"].startswith(name_prefix):
            for phase, seconds in document.get("phases", {}).items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        for child in document.get("children", []):
            visit(child)

    for root in trace_document.get("spans", []):
        visit(root)
    return totals
