"""Declarative threshold alerting over metrics-registry snapshots.

An alert rule is a comparison against one value extracted from a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` document, optionally
required to hold for a sustained duration::

    repro_pool_saturation > 0.9 for 10s
    repro_runs_total{status=error} > 0
    repro_request_seconds{tier=warm}:p50 > 0.01 for 5s

The grammar is ``NAME[{label=value,...}][:STAT] OP THRESHOLD [for Ns]``:

* ``NAME`` — a registry metric name; counters and gauges resolve to their
  value, histograms need a ``:STAT`` selector (``p50``/``p90``/``p95``/
  ``mean``/``max``/``count``/``sum``);
* ``{label=value,...}`` — exact label match; omitted = every label set of
  the metric, aggregated (counters/histograms add, gauges take the max);
* ``OP`` — one of ``>`` ``>=`` ``<`` ``<=`` ``==`` ``!=``;
* ``for Ns`` — hysteresis: the condition must hold continuously for ``N``
  seconds before the rule fires.  A missing metric never satisfies a rule.

:class:`RuleEngine` evaluates rules against successive snapshots and keeps
per-rule state so each sustained breach **fires exactly once** (an
``alert.fired`` event) and **resets on recovery** (``alert.resolved``) —
a flapping metric cannot spam the stream.  :class:`AlertMonitor` runs an
engine on a polling thread over any snapshot source (a local registry, a
remote ``/dashboard``) and is the non-zero-exit gate behind
``repro loadtest --alert`` / ``repro sweep --alert``.

:func:`baseline_rule` derives a warm-latency regression rule from a
``BENCH_service.json`` baseline, so a load test can alarm on "warm p50
regressed vs the committed benchmark" without hand-coding the threshold.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from .events import EventLog, get_event_log
from .metrics import Histogram

PathLike = Union[str, Path]

#: Histogram statistics a rule may select.
HISTOGRAM_STATS = ("p50", "p90", "p95", "mean", "max", "count", "sum")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_RULE_RE = re.compile(
    r"""^\s*
    (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)
    (?:\{(?P<labels>[^}]*)\})?
    (?::(?P<stat>[a-z0-9]+))?
    \s*(?P<op>>=|<=|==|!=|>|<)\s*
    (?P<threshold>[-+0-9.eE]+)
    (?:\s+for\s+(?P<duration>[0-9.]+)s?)?
    \s*$""",
    re.VERBOSE,
)


class AlertError(ValueError):
    """Raised for malformed rule specs or unusable baselines."""


def _histogram_value(entry: Mapping, name: str, stat: Optional[str]) -> Histogram:
    if stat is None:
        raise AlertError(
            f"metric {name!r} is a histogram; select a statistic "
            f"(one of {HISTOGRAM_STATS}), e.g. {name}:p50"
        )
    histogram = Histogram(buckets=tuple(entry["buckets"]))
    histogram.counts = [int(c) for c in entry["counts"]]
    histogram.sum = float(entry["sum"])
    histogram.count = int(entry["count"])
    histogram.max = float(entry["max"])
    return histogram


def resolve_metric(
    snapshot: Mapping, name: str, labels: Mapping[str, str], stat: Optional[str]
) -> Optional[float]:
    """One value out of a registry snapshot document (``None`` when absent).

    With labels the match is exact.  Without labels the rule covers *every*
    label set of the metric — ``contract_breach_total > 0`` fires no matter
    which breach kind incremented — aggregated by type: counters and
    histogram buckets add, gauges take the worst (max) value.
    """
    wanted = {str(k): str(v) for k, v in labels.items()}
    matches = [
        entry
        for entry in snapshot.get("metrics", [])
        if entry.get("name") == name
        and (not wanted or entry.get("labels", {}) == wanted)
    ]
    if not matches:
        return None
    kind = matches[0].get("type")
    if kind == "histogram":
        merged = _histogram_value(matches[0], name, stat)
        for entry in matches[1:]:
            extra = _histogram_value(entry, name, stat)
            if extra.buckets != merged.buckets:
                raise AlertError(f"histogram {name!r} bucket mismatch across label sets")
            merged.counts = [a + b for a, b in zip(merged.counts, extra.counts)]
            merged.sum += extra.sum
            merged.count += extra.count
            merged.max = max(merged.max, extra.max)
        if stat == "sum":
            return merged.sum
        return merged.summary()[stat]
    values = [float(entry.get("value", 0.0)) for entry in matches]
    if kind == "gauge" and len(values) > 1:
        return max(values)
    return sum(values) if len(values) > 1 else values[0]


class AlertRule:
    """One parsed threshold rule with sustained-breach hysteresis state."""

    def __init__(
        self,
        metric: str,
        op: str,
        threshold: float,
        labels: Optional[Mapping[str, str]] = None,
        stat: Optional[str] = None,
        for_seconds: float = 0.0,
        name: str = "",
    ):
        if op not in _OPS:
            raise AlertError(f"unknown comparison {op!r}")
        if stat is not None and stat not in HISTOGRAM_STATS:
            raise AlertError(
                f"unknown histogram statistic {stat!r}; expected one of {HISTOGRAM_STATS}"
            )
        if for_seconds < 0:
            raise AlertError(f"for-duration must be non-negative (got {for_seconds:g})")
        self.metric = metric
        self.op = op
        self.threshold = float(threshold)
        self.labels = dict(labels or {})
        self.stat = stat
        self.for_seconds = float(for_seconds)
        self.name = name or self.describe()
        # hysteresis state
        self.breach_since: Optional[float] = None
        self.firing = False
        self.fired_count = 0
        self.last_value: Optional[float] = None

    @classmethod
    def from_spec(cls, spec: str) -> "AlertRule":
        match = _RULE_RE.match(spec)
        if not match:
            raise AlertError(
                f"malformed alert rule {spec!r}; expected "
                "'name[{label=value}][:stat] OP threshold [for Ns]'"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for part in raw_labels.split(","):
                part = part.strip()
                if not part:
                    continue
                if "=" not in part:
                    raise AlertError(f"malformed label matcher {part!r} in {spec!r}")
                key, value = part.split("=", 1)
                labels[key.strip()] = value.strip().strip('"')
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise AlertError(f"malformed threshold in {spec!r}")
        name, stat = match.group("name"), match.group("stat")
        # Metric names may legally contain colons, so the greedy name pattern
        # swallows a label-less ':stat' suffix — peel a known statistic back
        # off (a rule with labels already has the stat in its own group).
        if stat is None:
            head, sep, tail = name.rpartition(":")
            if sep and tail in HISTOGRAM_STATS:
                name, stat = head, tail
        return cls(
            metric=name,
            op=match.group("op"),
            threshold=threshold,
            labels=labels,
            stat=stat,
            for_seconds=float(match.group("duration") or 0.0),
            name=spec.strip(),
        )

    def describe(self) -> str:
        labels = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(self.labels.items())) + "}"
            if self.labels
            else ""
        )
        stat = f":{self.stat}" if self.stat else ""
        duration = f" for {self.for_seconds:g}s" if self.for_seconds else ""
        return f"{self.metric}{labels}{stat} {self.op} {self.threshold:g}{duration}"

    def condition(self, snapshot: Mapping) -> bool:
        """Does the snapshot satisfy the comparison right now?"""
        value = resolve_metric(snapshot, self.metric, self.labels, self.stat)
        self.last_value = value
        if value is None:
            return False
        return _OPS[self.op](value, self.threshold)

    def reset(self) -> None:
        self.breach_since = None
        self.firing = False
        self.fired_count = 0
        self.last_value = None


def parse_rules(specs: Sequence[str]) -> List[AlertRule]:
    return [AlertRule.from_spec(spec) for spec in specs]


def baseline_rule(
    bench_path: PathLike, factor: float = 1.5, for_seconds: float = 0.0
) -> AlertRule:
    """A warm-p50 regression rule derived from a ``BENCH_service.json``.

    Reads the committed baseline's warm p50 and alarms when the live
    ``repro_request_seconds{tier=warm}`` p50 exceeds ``factor`` times it.
    """
    if factor <= 0:
        raise AlertError(f"baseline factor must be positive (got {factor:g})")
    path = Path(bench_path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise AlertError(f"unreadable baseline {path}: {error}")
    warm = document.get("latency_seconds", {}).get("warm", {})
    p50 = float(warm.get("p50", 0.0))
    if not p50 > 0:
        raise AlertError(f"baseline {path} carries no warm p50 latency")
    rule = AlertRule(
        metric="repro_request_seconds",
        labels={"tier": "warm"},
        stat="p50",
        op=">",
        threshold=p50 * factor,
        for_seconds=for_seconds,
        name=f"warm p50 regression vs {path.name} (> {factor:g}x baseline)",
    )
    return rule


class RuleEngine:
    """Evaluates rules over successive snapshots, firing events on transitions.

    ``evaluate`` is called with monotonically increasing ``now`` timestamps
    (seconds; any epoch).  Per rule:

    * condition newly true     -> start the breach window;
    * sustained ``for_seconds``-> fire **once** (``alert.fired`` event);
    * condition false again    -> resolve (``alert.resolved``) and re-arm.
    """

    def __init__(
        self, rules: Sequence[AlertRule], events: Optional[EventLog] = None
    ):
        self.rules = list(rules)
        self.events = events if events is not None else get_event_log()
        self.fired: List[Dict] = []

    def evaluate(self, snapshot: Mapping, now: float) -> List[Dict]:
        """One evaluation pass; returns the transitions it produced."""
        transitions: List[Dict] = []
        for rule in self.rules:
            breached = rule.condition(snapshot)
            if breached:
                if rule.breach_since is None:
                    rule.breach_since = now
                sustained = now - rule.breach_since >= rule.for_seconds
                if sustained and not rule.firing:
                    rule.firing = True
                    rule.fired_count += 1
                    record = {
                        "rule": rule.name,
                        "state": "fired",
                        "value": rule.last_value,
                        "threshold": rule.threshold,
                        "at": now,
                    }
                    self.fired.append(record)
                    transitions.append(record)
                    self.events.emit(
                        "alert.fired",
                        "alerts",
                        level="warning",
                        message=rule.name,
                        value=float(rule.last_value or 0.0),
                        threshold=rule.threshold,
                    )
            else:
                if rule.firing:
                    transitions.append(
                        {
                            "rule": rule.name,
                            "state": "resolved",
                            "value": rule.last_value,
                            "threshold": rule.threshold,
                            "at": now,
                        }
                    )
                    self.events.emit(
                        "alert.resolved",
                        "alerts",
                        level="info",
                        message=rule.name,
                        threshold=rule.threshold,
                    )
                rule.breach_since = None
                rule.firing = False
        return transitions

    @property
    def any_fired(self) -> bool:
        return bool(self.fired)

    def summary(self) -> str:
        if not self.fired:
            return f"alerts: {len(self.rules)} rule(s), none fired"
        lines = [f"alerts: {len(self.fired)} firing(s) across {len(self.rules)} rule(s)"]
        for record in self.fired:
            value = record["value"]
            shown = "n/a" if value is None else f"{value:g}"
            lines.append(f"  FIRED {record['rule']} (value {shown})")
        return "\n".join(lines)


class AlertMonitor:
    """A rule engine on a polling thread over any snapshot source.

    ``source`` returns a registry snapshot document (or ``None`` to skip a
    tick — e.g. a remote scrape that failed).  The monitor is the alert gate
    of ``repro loadtest`` / ``repro sweep``: start it, run the workload,
    stop it, and exit non-zero if :attr:`engine.any_fired`.
    """

    def __init__(
        self,
        source: Callable[[], Optional[Mapping]],
        rules: Sequence[AlertRule],
        interval: float = 0.5,
        events: Optional[EventLog] = None,
        clock: Callable[[], float] = None,
    ):
        if interval <= 0:
            raise AlertError(f"interval must be positive (got {interval:g})")
        from time import monotonic

        self.source = source
        self.engine = RuleEngine(rules, events=events)
        self.interval = interval
        self._clock = clock or monotonic
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def poll_once(self) -> List[Dict]:
        snapshot = self.source()
        if snapshot is None:
            return []
        return self.engine.evaluate(snapshot, self._clock())

    def start(self) -> "AlertMonitor":
        self._thread = threading.Thread(
            target=self._run, name="alert-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - monitoring must not kill the workload
                continue

    def stop(self) -> None:
        """Stop polling and run one final evaluation pass."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.poll_once()
        except Exception:  # noqa: BLE001
            pass

    @property
    def any_fired(self) -> bool:
        return self.engine.any_fired

    def summary(self) -> str:
        return self.engine.summary()


__all__ = [
    "AlertError",
    "AlertMonitor",
    "AlertRule",
    "HISTOGRAM_STATS",
    "RuleEngine",
    "baseline_rule",
    "parse_rules",
    "resolve_metric",
]
