"""Structured event log: the pipeline's *what-just-happened* instrument.

The span tracer answers *where does time go* and the metrics registry *how
much and how often*; the event log records **discrete operational moments** —
a sweep run finishing, a disruption striking an agent, a request bouncing off
a saturated pool, an alert rule firing — as append-only JSONL records that a
human (``repro top``), a machine (the ``/events`` SSE stream) or a file tail
can watch while the pipeline is still running.

One record per event::

    {"seq": 17, "ts": 1754650000.25, "mono": 3.141592653, "level": "info",
     "component": "sweep", "kind": "run.finished", "message": "ok",
     "run_id": "sweep-1", "request_id": "", "scenario_id": "8a65fb6b025c",
     "fields": {"status": "ok", "seconds": 1.25}}

Design rules, in priority order:

* **Process-safe by serialization.**  Every event is fully rendered to one
  JSON line before any I/O and appended under a POSIX ``flock`` (the same
  discipline as :class:`~repro.experiments.store.ResultStore`), so spawned
  sweep/pool workers and their parent can interleave on one file without
  ever tearing a line.  Workers inherit the sink through the
  ``REPRO_EVENTS`` environment variable — no plumbing.
* **Bounded everywhere.**  The in-memory tail is a ring buffer; subscriber
  queues are bounded and *drop* on overflow (a slow SSE client loses events,
  it never stalls the pipeline or grows memory).
* **Deterministic serialization.**  With injected clocks two identical event
  sequences serialize byte-identically: fixed key order, fixed rounding,
  monotonically assigned sequence numbers.

Context (``run_id`` / ``request_id`` / ``scenario_id``) propagates through
:func:`event_context` per thread, mirroring the X-Request-Id threading the
service layer already does for spans.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from time import monotonic
from time import time as wall_time
from typing import Callable, Dict, Iterator, List, Optional, Union

try:  # POSIX advisory file locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: Event severities, from chattiest to loudest.
EVENT_LEVELS = ("debug", "info", "warning", "error")

#: Decimal places of serialized wall/monotonic timestamps (1 µs / 1 ns).
WALL_DIGITS = 6
MONO_DIGITS = 9

#: Context keys that propagate onto every event emitted in scope.
CONTEXT_KEYS = ("run_id", "request_id", "scenario_id")


class EventError(ValueError):
    """Raised for invalid event levels or malformed subscriptions."""


class Event:
    """One structured, timestamped operational event."""

    __slots__ = (
        "seq",
        "ts",
        "mono",
        "level",
        "component",
        "kind",
        "message",
        "run_id",
        "request_id",
        "scenario_id",
        "fields",
    )

    def __init__(
        self,
        seq: int,
        ts: float,
        mono: float,
        level: str,
        component: str,
        kind: str,
        message: str = "",
        run_id: str = "",
        request_id: str = "",
        scenario_id: str = "",
        fields: Optional[Dict] = None,
    ):
        self.seq = seq
        self.ts = ts
        self.mono = mono
        self.level = level
        self.component = component
        self.kind = kind
        self.message = message
        self.run_id = run_id
        self.request_id = request_id
        self.scenario_id = scenario_id
        self.fields = fields or {}

    def to_dict(self) -> Dict:
        """Serialize with fixed key order and fixed time rounding."""
        return {
            "seq": self.seq,
            "ts": round(self.ts, WALL_DIGITS),
            "mono": round(self.mono, MONO_DIGITS),
            "level": self.level,
            "component": self.component,
            "kind": self.kind,
            "message": self.message,
            "run_id": self.run_id,
            "request_id": self.request_id,
            "scenario_id": self.scenario_id,
            "fields": {k: self.fields[k] for k in sorted(self.fields)},
        }

    def to_json(self) -> str:
        """One JSONL line (the wire and file format)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, document: Dict) -> "Event":
        return cls(
            seq=int(document.get("seq", 0)),
            ts=float(document.get("ts", 0.0)),
            mono=float(document.get("mono", 0.0)),
            level=str(document.get("level", "info")),
            component=str(document.get("component", "")),
            kind=str(document.get("kind", "")),
            message=str(document.get("message", "")),
            run_id=str(document.get("run_id", "")),
            request_id=str(document.get("request_id", "")),
            scenario_id=str(document.get("scenario_id", "")),
            fields=dict(document.get("fields", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.kind!r}, {self.component!r}, seq={self.seq})"


class Subscription:
    """A bounded live feed of events for one consumer (e.g. one SSE client).

    Events arriving while the queue is full are *dropped* for this consumer
    (counted in :attr:`dropped`) — a slow reader never exerts backpressure
    on the emitting pipeline.
    """

    def __init__(self, capacity: int = 1024):
        self._queue: "queue.Queue[Event]" = queue.Queue(maxsize=capacity)
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """The next event, or ``None`` when ``timeout`` elapses quietly."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None


class EventLog:
    """Process-safe structured event logger with ring buffer and subscribers.

    Parameters
    ----------
    capacity:
        Events retained in the in-memory ring (the ``/dashboard`` tail and
        the SSE replay window).
    path:
        Optional JSONL sink; every event appends one line under ``flock``.
    clock / wall:
        Injectable monotonic/wall clocks — fixed clocks make the serialized
        log a pure function of the emitted sequence (pinned by the
        byte-determinism tests).
    """

    def __init__(
        self,
        capacity: int = 2048,
        path: Optional[PathLike] = None,
        clock: Callable[[], float] = monotonic,
        wall: Callable[[], float] = wall_time,
    ):
        if capacity < 1:
            raise EventError(f"capacity must be at least 1 (got {capacity})")
        self.enabled = True
        self._capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._clock = clock
        self._wall = wall
        self._subscribers: List[Subscription] = []
        self._path: Optional[Path] = None
        if path:
            self.attach_file(path)

    # -- sinks -------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        return self._path

    def attach_file(self, path: PathLike) -> None:
        """Append every future event to ``path`` (creating it immediately)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.touch()
        self._path = target

    def detach_file(self) -> None:
        self._path = None

    def _write_line(self, line: str) -> None:
        if self._path is None:
            return
        with self._path.open("a") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            handle.write(line + "\n")
            handle.flush()

    # -- emission ----------------------------------------------------------------
    def emit(
        self,
        kind: str,
        component: str,
        level: str = "info",
        message: str = "",
        **fields,
    ) -> Optional[Event]:
        """Record one event: ring, subscribers, and the file sink (if any).

        Context bound by :func:`event_context` on the calling thread rides
        along; explicit ``run_id``/``request_id``/``scenario_id`` keyword
        fields override it.  Returns the event, or ``None`` when disabled.
        """
        if not self.enabled:
            return None
        if level not in EVENT_LEVELS:
            raise EventError(
                f"unknown level {level!r}; expected one of {EVENT_LEVELS}"
            )
        context = current_context()
        ids = {key: str(fields.pop(key, "") or context.get(key, "")) for key in CONTEXT_KEYS}
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=self._wall(),
                mono=self._clock(),
                level=level,
                component=component,
                kind=kind,
                message=message,
                fields=fields,
                **ids,
            )
            self._ring.append(event)
            subscribers = list(self._subscribers) if self._subscribers else None
        if subscribers:
            for subscription in subscribers:
                subscription._offer(event)
        if self._path is not None:
            self._write_line(event.to_json())
        return event

    # -- queries -----------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def recent(
        self,
        limit: int = 100,
        level: Optional[str] = None,
        component: Optional[str] = None,
        since: int = 0,
    ) -> List[Dict]:
        """The newest matching events from the ring, oldest first."""
        with self._lock:
            events = list(self._ring)
        selected = [
            event
            for event in events
            if event.seq > since
            and (level is None or event.level == level)
            and (component is None or event.component == component)
        ]
        return [event.to_dict() for event in selected[-max(0, limit):]]

    # -- subscriptions -----------------------------------------------------------
    def subscribe(self, since: int = -1, capacity: int = 1024) -> Subscription:
        """A live feed, optionally preloaded with the ring tail after ``since``.

        ``since=-1`` skips replay (live only); ``since=0`` replays the whole
        retained ring — the reconnect path: a client that remembers the last
        ``seq`` it saw passes it and misses nothing still retained.
        """
        subscription = Subscription(capacity=capacity)
        with self._lock:
            if since >= 0:
                for event in self._ring:
                    if event.seq > since:
                        subscription._offer(event)
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.closed = True
        with self._lock:
            if subscription in self._subscribers:
                self._subscribers.remove(subscription)

    @property
    def num_subscribers(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def clear(self) -> None:
        """Forget the ring and reset the sequence (tests only; sinks keep lines)."""
        with self._lock:
            self._ring.clear()
            self._seq = 0


# ---------------------------------------------------------------------------
# thread-local context propagation
# ---------------------------------------------------------------------------

_CONTEXT = threading.local()


def current_context() -> Dict[str, str]:
    """The calling thread's bound event context (empty dict when none)."""
    return getattr(_CONTEXT, "values", None) or {}


@contextmanager
def event_context(**values: str) -> Iterator[None]:
    """Bind ``run_id``/``request_id``/``scenario_id`` onto emitted events.

    Nested contexts layer (inner values win); the previous binding is
    restored on exit.  Unknown keys are rejected so typos fail loudly.
    """
    for key in values:
        if key not in CONTEXT_KEYS:
            raise EventError(
                f"unknown context key {key!r}; expected one of {CONTEXT_KEYS}"
            )
    previous = current_context()
    merged = {**previous, **{k: str(v) for k, v in values.items()}}
    _CONTEXT.values = merged
    try:
        yield
    finally:
        _CONTEXT.values = previous


# ---------------------------------------------------------------------------
# the process-wide log
# ---------------------------------------------------------------------------

#: The process-wide default log (sweep runner, sim engine, CLI).
EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    return EVENT_LOG


def emit_event(
    kind: str, component: str, level: str = "info", message: str = "", **fields
) -> Optional[Event]:
    """Emit onto the process-wide log (the module-level convenience)."""
    return EVENT_LOG.emit(kind, component, level=level, message=message, **fields)


def read_events(path: PathLike) -> List[Dict]:
    """Parse an events JSONL file, skipping malformed/partial lines."""
    events: List[Dict] = []
    target = Path(path)
    if not target.exists():
        return events
    for line in target.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(document, dict):
            events.append(document)
    return events


# Ambient file sink: spawned workers inherit the environment, so a parent
# exporting REPRO_EVENTS=/path/events.jsonl gets every worker's events
# interleaved (flock-safe) into one file without any plumbing.
_ambient = os.environ.get("REPRO_EVENTS", "")
if _ambient and _ambient not in ("0", "false", "no"):  # pragma: no cover - spawn path
    try:
        EVENT_LOG.attach_file(_ambient)
    except OSError:
        pass
