"""Structured tracing: nestable spans with monotonic timings and counters.

The tracer is the pipeline's *where-does-time-go* instrument.  A span is a
named interval with attributes, counters, and accumulated *phase* timers;
spans nest (per thread) into trees, and completed root spans are collected by
the process-wide :class:`Tracer`.

Design rules, in priority order:

* **Zero cost when disabled.**  ``span(...)`` returns a shared
  :data:`NULL_SPAN` singleton whose every method is a no-op — no allocation,
  no clock read, no lock.  Hot loops may therefore be instrumented
  unconditionally; the price of a disabled tracer is one attribute check.
* **No behavioural coupling.**  Instrumented code must compute exactly the
  same result with tracing on or off — spans observe, never steer.  The
  golden determinism tests pin this: a traced run's serialized trace, with
  the ``obs`` section stripped, is byte-identical to an untraced run's.
* **Deterministic serialization.**  :func:`span_to_dict` emits plain
  dictionaries with stable key order and times rounded to fixed precision,
  relative to the root span's start — two serializations of the same span
  tree are byte-identical under ``json.dumps(..., sort_keys=True)``.

Typical use::

    from repro.obs import capture_trace, span

    with capture_trace() as capture:
        with span("solver.solve", map="sorting-center-small") as sp:
            with sp.timer("synthesis"):
                ...
            sp.add("ilp_variables", n)
    capture.to_dict()   # {"schema": "obs-trace", "spans": [...]}

Enabling is either lexical (:func:`capture_trace`), explicit
(:func:`enable_tracing` / :func:`disable_tracing`), or ambient via the
``REPRO_OBS=1`` environment variable — which spawned worker processes
inherit, so sweep/pool workers trace themselves when the parent asks.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Union

#: Attribute values spans accept (anything JSON-scalar).
AttrValue = Union[str, int, float, bool]

#: Decimal places of serialized timestamps/durations (1 ns resolution).
TIME_DIGITS = 9


class NullSpan:
    """The disabled span: every operation is a no-op, including timing.

    A single shared instance (:data:`NULL_SPAN`) doubles as its own phase
    timer and context manager, so ``with span(...) as sp`` and
    ``with sp.timer("phase")`` cost two trivial method calls when tracing
    is off.
    """

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set_attr(self, _name: str, _value: AttrValue) -> None:
        pass

    def add(self, _counter: str, _amount: float = 1) -> None:
        pass

    def timer(self, _phase: str) -> "NullSpan":
        return self


#: The shared disabled span.
NULL_SPAN = NullSpan()


class _PhaseTimer:
    """Accumulates wall time into ``span.phases[phase]`` across many uses."""

    __slots__ = ("_span", "_phase", "_t0")

    def __init__(self, span: "Span", phase: str):
        self._span = span
        self._phase = phase

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        phases = self._span.phases
        phases[self._phase] = phases.get(self._phase, 0.0) + (
            perf_counter() - self._t0
        )
        return False


class Span:
    """One named, timed interval in a per-thread span tree."""

    __slots__ = (
        "name",
        "t_start",
        "t_end",
        "attrs",
        "counters",
        "phases",
        "children",
        "_tracer",
    )
    enabled = True

    def __init__(self, name: str, tracer: "Tracer", attrs: Dict[str, AttrValue]):
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.phases: Dict[str, float] = {}
        self.children: List[Span] = []
        self._tracer = tracer
        self.t_end = 0.0
        self.t_start = perf_counter()

    # -- context manager --------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self.t_end = perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    # -- recording --------------------------------------------------------------
    def set_attr(self, name: str, value: AttrValue) -> None:
        self.attrs[name] = value

    def add(self, counter: str, amount: float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def timer(self, phase: str) -> _PhaseTimer:
        """A reusable context manager accumulating time into ``phases[phase]``."""
        return _PhaseTimer(self, phase)

    # -- queries ----------------------------------------------------------------
    @property
    def duration(self) -> float:
        return max(0.0, (self.t_end or perf_counter()) - self.t_start)

    @property
    def self_seconds(self) -> float:
        """Duration minus the children's durations (time spent in this span alone)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1000:.2f}ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Process-wide span collector with per-thread nesting stacks."""

    def __init__(self, max_roots: int = 1024):
        self.enabled = False
        self.max_roots = max_roots
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: List[Span] = []

    # -- span lifecycle ---------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: AttrValue) -> Union[Span, NullSpan]:
        if not self.enabled:
            return NULL_SPAN
        current = Span(name, self, dict(attrs))
        stack = self._stack()
        if stack:
            stack[-1].children.append(current)
        stack.append(current)
        return current

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Defensive: tolerate out-of-order exits instead of corrupting the tree.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            with self._lock:
                self._finished.append(span)
                if len(self._finished) > self.max_roots:
                    del self._finished[0]

    def current(self) -> Union[Span, NullSpan]:
        """The innermost open span of this thread (:data:`NULL_SPAN` if none)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    # -- collection -------------------------------------------------------------
    def drain(self) -> List[Span]:
        """Remove and return every completed root span."""
        with self._lock:
            finished, self._finished = self._finished, []
        return finished


#: The process-wide tracer every ``span()`` call goes through.
_TRACER = Tracer()


def span(name: str, **attrs: AttrValue) -> Union[Span, NullSpan]:
    """Open a span on the calling thread (no-op when tracing is disabled)."""
    return _TRACER.span(name, **attrs)


def current_span() -> Union[Span, NullSpan]:
    """The calling thread's innermost open span (for late attribute binding)."""
    return _TRACER.current()


def tracing_enabled() -> bool:
    return _TRACER.enabled


def drain_spans() -> List[Dict]:
    """Remove every completed root span and return them serialized.

    This is the worker → parent trace hand-off: a spawned worker that traced
    itself (``REPRO_OBS=1``) drains its finished spans into plain dicts that
    travel over the process boundary inside the run record.
    """
    return [span_to_dict(root) for root in _TRACER.drain()]


def enable_tracing() -> None:
    _TRACER.enabled = True


def disable_tracing() -> None:
    _TRACER.enabled = False


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def span_to_dict(span: Span, origin: Optional[float] = None) -> Dict:
    """Serialize one span (sub)tree relative to ``origin`` (default: its start).

    Keys are emitted in a fixed order and every time is rounded to
    :data:`TIME_DIGITS`, so serialization is a pure function of the span tree.
    """
    if origin is None:
        origin = span.t_start
    return {
        "name": span.name,
        "start": round(span.t_start - origin, TIME_DIGITS),
        "duration": round(span.duration, TIME_DIGITS),
        "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
        "counters": {k: span.counters[k] for k in sorted(span.counters)},
        "phases": {k: round(span.phases[k], TIME_DIGITS) for k in sorted(span.phases)},
        "children": [span_to_dict(child, origin) for child in span.children],
    }


class TraceCapture:
    """The root spans completed during one :func:`capture_trace` window."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    @property
    def root(self) -> Optional[Span]:
        return self.spans[0] if self.spans else None

    def to_dict(self) -> Dict:
        return {
            "schema": "obs-trace",
            "version": 1,
            "spans": [span_to_dict(span) for span in self.spans],
        }


@contextmanager
def capture_trace() -> Iterator[TraceCapture]:
    """Enable tracing for the enclosed block and collect its root spans.

    Spans completed by *other threads* during the window are collected too
    (the tracer is process-wide); spans from before the window are discarded.
    On exit the tracer returns to its previous enabled state.
    """
    capture = TraceCapture()
    previous = _TRACER.enabled
    _TRACER.drain()
    _TRACER.enabled = True
    try:
        yield capture
    finally:
        _TRACER.enabled = previous
        capture.spans = _TRACER.drain()


# Ambient enablement: spawned workers inherit the environment, so a parent
# exporting REPRO_OBS=1 gets traced children without any plumbing.
if os.environ.get("REPRO_OBS", "0") not in ("0", "", "false", "no"):  # pragma: no cover
    enable_tracing()
