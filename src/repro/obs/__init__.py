"""repro.obs — pipeline-wide observability: tracing, metrics, profiling.

Three instruments over one design rule — *observe, never steer*:

* :mod:`repro.obs.tracing` — nestable spans with monotonic timings, phase
  timers, counters and attributes; zero-cost when disabled, deterministic
  JSON serialization.  Threaded through the solver stages, the MAPF search
  internals, the sim engine's event loop and the service request path.
* :mod:`repro.obs.metrics` — a process-safe registry of counters, gauges and
  fixed-bucket histograms; spawn-based workers serialize snapshots back to
  the parent so fleet-wide metrics aggregate exactly.  Exported as JSON and
  Prometheus text exposition format.
* :mod:`repro.obs.profiling` — a cProfile + span-tree harness behind the
  ``repro profile`` CLI subcommand.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
)
from .profiling import ProfileResult, profile_call, span_phase_totals
from .tracing import (
    NULL_SPAN,
    Span,
    TraceCapture,
    capture_trace,
    current_span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    span,
    span_to_dict,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProfileResult",
    "Span",
    "TraceCapture",
    "capture_trace",
    "current_span",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "get_registry",
    "profile_call",
    "span",
    "span_phase_totals",
    "span_to_dict",
    "tracing_enabled",
]
