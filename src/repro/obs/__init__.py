"""repro.obs — pipeline-wide observability: tracing, metrics, profiling.

Three instruments over one design rule — *observe, never steer*:

* :mod:`repro.obs.tracing` — nestable spans with monotonic timings, phase
  timers, counters and attributes; zero-cost when disabled, deterministic
  JSON serialization.  Threaded through the solver stages, the MAPF search
  internals, the sim engine's event loop and the service request path.
* :mod:`repro.obs.metrics` — a process-safe registry of counters, gauges and
  fixed-bucket histograms; spawn-based workers serialize snapshots back to
  the parent so fleet-wide metrics aggregate exactly.  Exported as JSON and
  Prometheus text exposition format.
* :mod:`repro.obs.profiling` — a cProfile + span-tree harness behind the
  ``repro profile`` CLI subcommand.
* :mod:`repro.obs.events` — a process-safe structured event log (JSONL
  records with wall+monotonic timestamps and propagated run/request
  context): the live operational layer behind the ``/events`` SSE stream,
  ``repro top`` and the sweep progress line.
* :mod:`repro.obs.alerts` — declarative threshold rules with sustained-
  breach hysteresis evaluated over registry snapshots; the non-zero-exit
  alert gate of ``repro loadtest`` / ``repro sweep``.
"""

from .alerts import (
    AlertError,
    AlertMonitor,
    AlertRule,
    HISTOGRAM_STATS,
    RuleEngine,
    baseline_rule,
    parse_rules,
    resolve_metric,
)
from .events import (
    CONTEXT_KEYS,
    EVENT_LEVELS,
    Event,
    EventError,
    EventLog,
    current_context,
    emit_event,
    event_context,
    get_event_log,
    read_events,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
)
from .profiling import ProfileResult, profile_call, span_phase_totals
from .tracing import (
    NULL_SPAN,
    Span,
    TraceCapture,
    capture_trace,
    current_span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    span,
    span_to_dict,
    tracing_enabled,
)

__all__ = [
    "AlertError",
    "AlertMonitor",
    "AlertRule",
    "CONTEXT_KEYS",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_LEVELS",
    "Event",
    "EventError",
    "EventLog",
    "HISTOGRAM_STATS",
    "RuleEngine",
    "baseline_rule",
    "current_context",
    "emit_event",
    "event_context",
    "get_event_log",
    "parse_rules",
    "read_events",
    "resolve_metric",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProfileResult",
    "Span",
    "TraceCapture",
    "capture_trace",
    "current_span",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "get_registry",
    "profile_call",
    "span",
    "span_phase_totals",
    "span_to_dict",
    "tracing_enabled",
]
