"""A process-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the pipeline's *how-much-and-how-often* instrument,
complementing the span tracer's *where-does-time-go*.  Three instrument
kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotone accumulation (requests served, runs by status);
* :class:`Gauge`   — last-written value (pool in-flight, cache size);
* :class:`Histogram` — fixed upper-bound buckets with exact sum/count/max.
  Observations update **O(buckets) integers** — memory is constant no matter
  how many samples arrive, which is what lets the serving layer report
  latency percentiles under sustained load without an unbounded reservoir.

Process safety is by *serialization, not shared memory*: spawn-based workers
(sweep runner, service pool) record into their own registry, ship
:meth:`MetricsRegistry.snapshot` back over the process boundary as plain
JSON, and the parent folds it in with :meth:`MetricsRegistry.merge` —
counters and histogram buckets add, gauges keep the merged value.  Fleet-wide
metrics therefore aggregate exactly, regardless of how work was spread over
workers.

Export formats:

* :meth:`MetricsRegistry.snapshot` — deterministic JSON document (the
  ``/metrics`` JSON endpoint and the cross-process wire format);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition format
  version 0.0.4 (the ``/metrics?format=prometheus`` endpoint).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1ms .. 60s, roughly x2.5 per step.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Label key/value pairs, frozen into a registry key.
LabelsKey = Tuple[Tuple[str, str], ...]


class MetricsError(ValueError):
    """Raised for invalid metric names, labels or type collisions."""


def _labels_key(labels: Mapping[str, str]) -> LabelsKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise MetricsError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counters only go up (got {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value."""

    kind = "gauge"
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with exact sum, count and max.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches everything beyond the last bound.  The storage is one integer
    per bucket plus three scalars — observation never allocates.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count", "max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise MetricsError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value

    # -- derived ----------------------------------------------------------------
    def percentile(self, fraction: float) -> float:
        """Estimated percentile via linear interpolation inside the bucket.

        The estimate is bounded by the bucket's bounds (and by the observed
        ``max`` for the +Inf bucket) — accuracy is the bucket resolution,
        memory is constant.  Returns 0.0 for an empty histogram.
        """
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lower = 0.0 if index == 0 else self.buckets[index - 1]
            upper = self.max if index == len(self.buckets) else self.buckets[index]
            upper = max(upper, lower)
            if cumulative + bucket_count >= target:
                within = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, within))
            cumulative += bucket_count
        return self.max

    def summary(self) -> Dict[str, float]:
        """The ``latency_summary``-shaped digest (p50/p90/p95/mean/max/count)."""
        return {
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p95": self.percentile(0.95),
            "mean": self.sum / self.count if self.count else 0.0,
            "max": self.max,
            "count": float(self.count),
        }


class MetricsRegistry:
    """Named, labelled instruments with snapshot/merge/Prometheus export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelsKey], object] = {}
        self._help: Dict[str, str] = {}

    # -- instrument lookup -------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise MetricsError(
                    f"metric {name!r} already registered as a {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        if help:
            self._help.setdefault(name, help)
        return self._get(Counter, name, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        if help:
            self._help.setdefault(name, help)
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        if help:
            self._help.setdefault(name, help)
        return self._get(Histogram, name, labels, buckets=buckets)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._help.clear()

    def drain(self) -> Dict:
        """Snapshot, then reset — the ship-once worker hand-off.

        A pool worker that accumulates into its process-wide registry drains
        it into each run's obs payload, so a reused worker process never
        double-ships observations it already reported.  (Snapshot and clear
        are two lock acquisitions; the worker entry point is single-threaded
        between runs, which is the context this is meant for.)
        """
        snapshot = self.snapshot()
        self.clear()
        return snapshot

    # -- snapshot / merge --------------------------------------------------------
    def snapshot(self) -> Dict:
        """A deterministic, JSON-able document of every instrument's state."""
        entries: List[Dict] = []
        with self._lock:
            items = sorted(self._metrics.items())
            help_text = dict(self._help)
        for (name, labels), metric in items:
            entry: Dict = {"name": name, "labels": dict(labels), "type": metric.kind}
            if isinstance(metric, Histogram):
                entry.update(
                    buckets=list(metric.buckets),
                    counts=list(metric.counts),
                    sum=metric.sum,
                    count=metric.count,
                    max=metric.max,
                )
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return {"schema": "obs-metrics", "version": 1, "help": help_text, "metrics": entries}

    def merge(self, snapshot: Mapping) -> None:
        """Fold a snapshot in: counters/histograms add, gauges take the value.

        This is the worker → parent aggregation path; merging N worker
        snapshots yields the same totals as if every observation had happened
        in the parent.
        """
        for name, text in snapshot.get("help", {}).items():
            self._help.setdefault(name, text)
        for entry in snapshot.get("metrics", []):
            name, labels, kind = entry["name"], entry.get("labels", {}), entry["type"]
            if kind == "counter":
                self.counter(name, **labels).inc(float(entry["value"]))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(entry["value"]))
            elif kind == "histogram":
                metric = self.histogram(
                    name, buckets=tuple(entry["buckets"]), **labels
                )
                if tuple(metric.buckets) != tuple(entry["buckets"]):
                    raise MetricsError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                with metric._lock:
                    for index, count in enumerate(entry["counts"]):
                        metric.counts[index] += int(count)
                    metric.sum += float(entry["sum"])
                    metric.count += int(entry["count"])
                    metric.max = max(metric.max, float(entry["max"]))
            else:
                raise MetricsError(f"unknown metric type {kind!r} in snapshot")

    # -- Prometheus text exposition ----------------------------------------------
    def to_prometheus(self) -> str:
        """Render the registry in text exposition format 0.0.4."""
        snapshot = self.snapshot()
        help_text = snapshot["help"]
        by_name: Dict[str, List[Dict]] = {}
        for entry in snapshot["metrics"]:
            by_name.setdefault(entry["name"], []).append(entry)
        lines: List[str] = []
        for name in sorted(by_name):
            entries = by_name[name]
            kind = entries[0]["type"]
            if help_text.get(name):
                lines.append(f"# HELP {name} {help_text[name]}")
            lines.append(f"# TYPE {name} {kind}")
            for entry in entries:
                labels = entry["labels"]
                if kind == "histogram":
                    cumulative = 0
                    bounds = list(entry["buckets"]) + [math.inf]
                    for bound, count in zip(bounds, entry["counts"]):
                        cumulative += count
                        bucket_labels = dict(labels, le=_format_value(bound))
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {_format_value(entry['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {entry['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_format_value(entry['value'])}"
                    )
        return "\n".join(lines) + "\n"


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


#: The process-wide default registry (sweep aggregation, CLI reporting).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
