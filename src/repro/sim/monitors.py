"""Runtime assume-guarantee contract monitoring over the simulated trace.

The synthesis stage promises behaviour in the language of per-cycle-period
flow variables (``f[i, j, k]``, ``fin``, ``fout``, aggregates).  The simulated
trace *observes* the same quantities: cross-component transitions with the
carried product, pickups and hand-offs per component and product.  The
monitor closes the loop: it binds every contract variable to its observed
average per-period rate and re-evaluates the very
:class:`~repro.solver.expressions.LinearConstraint` objects the contracts were
compiled from — assumptions (what the environment owed the components) and
guarantees (what the components promised) are reported separately, so a breach
names who broke the deal.

Two measurement conventions keep the binding faithful:

* The **traffic-system contract** is evaluated over *all* complete periods
  (counts / periods): its bounds (stock, capacity) are whole-run quantities.
* The **workload contract** divides demand over the *effective* periods
  (``num_periods - warmup``), so its observed rates use the same denominator —
  otherwise a correct plan would be flagged for its warm-up transient.

Counting over a finite window leaves O(1) units "in flight" per constraint
(agents mid-component at the window edges), so each traffic-contract
constraint is checked with a slack of a few units spread over the measured
periods; the slack is configurable and auto-sized from the largest component
capacity.  The workload contract is checked with *zero* slack: served units
are cumulative events, so its ≥-rate guarantees must hold exactly once the
demand is serviced.

Besides the post-hoc contract evaluation, the monitor runs *live*: attached to
the engine it re-checks the hard per-period capacity assumption at every
period boundary and stamps the first violating tick.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..contracts import AGContract
from ..solver.expressions import LinearConstraint, Variable
from ..traffic.system import TrafficSystem
from ..warehouse.workload import Workload
from .engine import PRIORITY_MONITORS, SimulationEngine
from .telemetry import SimulationTrace, TraceRecorder

#: Flow-variable name grammar shared with :mod:`repro.core.flow_variables`.
_VARIABLE_RE = re.compile(r"^(f|loaded|empty|fin|fout|pickups|dropoffs)\[([\d,]+)\]$")

ASSUMPTION = "assumption"
GUARANTEE = "guarantee"
SERVICE = "workload-service"
LIVE_CAPACITY = "live-capacity"


class MonitorError(ValueError):
    """Raised when a contract variable cannot be bound to a trace observable."""


@dataclass(frozen=True)
class MonitorViolation:
    """One observed breach of a monitored contract constraint."""

    contract: str
    constraint: str
    kind: str
    amount: float
    detail: str
    tick: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" @ t={self.tick}" if self.tick is not None else ""
        return f"[{self.kind}] {self.contract}/{self.constraint}{where}: {self.detail}"


@dataclass
class MonitorReport:
    """Outcome of checking the contracts against one trace."""

    violations: List[MonitorViolation]
    constraints_checked: int
    periods_measured: int
    effective_periods: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    def violations_of_kind(self, kind: str) -> List[MonitorViolation]:
        return [v for v in self.violations if v.kind == kind]

    def summary(self) -> str:
        status = (
            "all contracts honored"
            if self.ok
            else f"{self.num_violations} violation(s): "
            + ", ".join(
                f"{len(self.violations_of_kind(k))} {k}"
                for k in (ASSUMPTION, GUARANTEE, SERVICE, LIVE_CAPACITY)
                if self.violations_of_kind(k)
            )
        )
        return (
            f"contract monitor: {status} "
            f"({self.constraints_checked} constraints over {self.periods_measured} periods)"
        )


@dataclass
class ContractMonitor:
    """Checks compiled contracts against a simulation trace.

    Parameters
    ----------
    system:
        The traffic system the contracts were compiled for (names and
        capacities for diagnostics and the live capacity check).
    traffic_contract, demand_contract:
        The contracts produced by the synthesis stage
        (:attr:`~repro.core.flow_synthesis.FlowSynthesisResult.traffic_contract`
        / ``workload_contract``).  Either may be ``None`` to skip it.
    warmup_periods:
        The warm-up margin the workload contract was compiled with.
    slack_units:
        Window-edge tolerance in *units per window* per constraint; ``None``
        auto-sizes it to the largest component capacity + 1.
    """

    system: TrafficSystem
    traffic_contract: Optional[AGContract] = None
    demand_contract: Optional[AGContract] = None
    warmup_periods: int = 0
    slack_units: Optional[float] = None
    live_violations: List[MonitorViolation] = field(default_factory=list)
    _live_seen: Dict[Tuple[int, int], int] = field(default_factory=dict)

    # -- live monitoring ---------------------------------------------------------
    def attach(
        self, engine: SimulationEngine, recorder: TraceRecorder, cycle_time: int
    ) -> None:
        """Re-check the per-period capacity assumption at every period boundary."""

        def check_period() -> None:
            now = engine.now
            period = now // cycle_time - 1
            if period < 0 or period >= recorder.periods:
                return
            for component in self.system.components:
                entered = recorder.transitions_into(component.index, period)
                if entered > component.capacity:
                    key = (component.index, period)
                    if key in self._live_seen:
                        continue
                    self._live_seen[key] = now
                    violation = MonitorViolation(
                        contract=f"component[{component.name}]",
                        constraint=f"capacity[{component.name}]",
                        kind=LIVE_CAPACITY,
                        amount=float(entered - component.capacity),
                        detail=(
                            f"{entered} agents entered in period {period} "
                            f"(capacity {component.capacity})"
                        ),
                        tick=now,
                    )
                    self.live_violations.append(violation)
                    from ..obs import emit_event, get_registry

                    get_registry().counter(
                        "repro_contract_breach_total",
                        "Live contract breaches observed by the sim monitors",
                        kind=LIVE_CAPACITY,
                    ).inc()
                    emit_event(
                        "contract.breach",
                        "sim",
                        level="error",
                        message=violation.detail,
                        contract=violation.contract,
                        amount=violation.amount,
                        tick=now,
                    )

        engine.every(cycle_time, check_period, PRIORITY_MONITORS, start=cycle_time)

    # -- post-hoc evaluation -------------------------------------------------------
    def evaluate(
        self, trace: SimulationTrace, workload: Optional[Workload] = None
    ) -> MonitorReport:
        periods = max(1, trace.periods)
        effective = max(1, periods - self.warmup_periods)
        slack = self.slack_units
        if slack is None:
            slack = float(max(c.capacity for c in self.system.components) + 1)
        violations: List[MonitorViolation] = list(self.live_violations)
        checked = 0

        if self.traffic_contract is not None:
            assignment = self._bind(self.traffic_contract, trace, float(periods))
            checked += self._check(
                self.traffic_contract, assignment, slack / periods, violations
            )
        if self.demand_contract is not None:
            assignment = self._bind(
                self.demand_contract, trace, float(effective), served=True
            )
            # No window slack here: served counts are cumulative events, so a
            # serviced workload satisfies its ≥-rate guarantees exactly, and
            # any in-flight allowance would swallow the (small) per-product
            # demand rates and make these checks vacuous.
            checked += self._check(self.demand_contract, assignment, 0.0, violations)
        if workload is not None:
            checked += self._check_service(workload, trace, violations)

        return MonitorReport(
            violations=violations,
            constraints_checked=checked,
            periods_measured=periods,
            effective_periods=effective,
        )

    # -- variable binding ----------------------------------------------------------
    def _bind(
        self,
        contract: AGContract,
        trace: SimulationTrace,
        denominator: float,
        served: bool = False,
    ) -> Dict[Variable, float]:
        """Observed average per-period rate of every contract variable.

        ``served=True`` binds drop-off variables to *completed* station
        services (the workload contract's end-to-end meaning); otherwise they
        bind to physical hand-offs (the traffic contract's flow meaning).
        """
        dropoff_counts = trace.served if served else trace.handoffs
        assignment: Dict[Variable, float] = {}
        for variable in contract.variables:
            match = _VARIABLE_RE.match(variable.name)
            if match is None:
                raise MonitorError(
                    f"contract variable {variable.name!r} is not a flow variable; "
                    "the monitor only understands flow-synthesis contracts"
                )
            family = match.group(1)
            indices = tuple(int(i) for i in match.group(2).split(","))
            if family == "f":
                i, j, k = indices
                count = _total(trace.transitions, (i, j, k))
            elif family == "loaded":
                i, j = indices
                count = sum(
                    int(c.sum())
                    for (src, dst, k), c in trace.transitions.items()
                    if src == i and dst == j and k != 0
                )
            elif family == "empty":
                i, j = indices
                count = _total(trace.transitions, (i, j, 0))
            elif family == "fin":
                count = _total(trace.pickups, indices)
            elif family == "fout":
                count = _total(dropoff_counts, indices)
            elif family == "pickups":
                (i,) = indices
                count = sum(
                    int(c.sum()) for (comp, _), c in trace.pickups.items() if comp == i
                )
            else:  # dropoffs
                (i,) = indices
                count = sum(
                    int(c.sum()) for (comp, _), c in dropoff_counts.items() if comp == i
                )
            assignment[variable] = count / denominator
        return assignment

    def _check(
        self,
        contract: AGContract,
        assignment: Mapping[Variable, float],
        tolerance: float,
        violations: List[MonitorViolation],
    ) -> int:
        checked = 0
        for kind, constraints in (
            (ASSUMPTION, contract.assumptions),
            (GUARANTEE, contract.guarantees),
        ):
            for constraint in constraints:
                checked += 1
                amount = constraint.violation(assignment)
                if amount > tolerance + 1e-9:
                    violations.append(
                        MonitorViolation(
                            contract=contract.name,
                            constraint=constraint.name or repr(constraint),
                            kind=kind,
                            amount=amount,
                            detail=(
                                f"observed rates violate {constraint.name or constraint!r} "
                                f"by {amount:.3f} units/period"
                            ),
                        )
                    )
        return checked

    def _check_service(
        self, workload: Workload, trace: SimulationTrace, violations: List[MonitorViolation]
    ) -> int:
        """Cumulative end-to-end check: every demanded unit served by the horizon."""
        served = trace.served_per_product()
        shortfall = workload.shortfall(served)
        for product, missing in sorted(shortfall.items()):
            violations.append(
                MonitorViolation(
                    contract="workload",
                    constraint=f"service[{product}]",
                    kind=SERVICE,
                    amount=float(missing),
                    detail=(
                        f"product {product}: {served.get(product, 0)} of "
                        f"{workload.demand(product)} demanded units served by the horizon"
                    ),
                )
            )
        return workload.num_requested_products


def _total(table: Mapping, key) -> int:
    counts = table.get(key)
    return int(counts.sum()) if counts is not None else 0


def monitor_from_synthesis(
    system: TrafficSystem,
    synthesis,
    slack_units: Optional[float] = None,
) -> ContractMonitor:
    """Build a monitor from a :class:`~repro.core.flow_synthesis.FlowSynthesisResult`."""
    flow_set = getattr(synthesis, "flow_set", None)
    return ContractMonitor(
        system=system,
        traffic_contract=getattr(synthesis, "traffic_contract", None),
        demand_contract=getattr(synthesis, "workload_contract", None),
        warmup_periods=flow_set.warmup_periods if flow_set is not None else 0,
        slack_units=slack_units,
    )
