"""Agent executors: stepping a realized plan through the event engine.

A realized :class:`~repro.warehouse.plan.Plan` is a complete commitment — for
every agent and tick it fixes the vertex and the carried product.  The
executors replay those commitments tick by tick and translate them into the
*events* the rest of the digital twin consumes:

* movement (visit counts, per-component transitions with the carried product —
  the observable counterpart of the synthesized flow variables ``f[i, j, k]``);
* pickups (consume shelf inventory through the row's
  :class:`~repro.sim.stations.ShelfProcess`);
* drop-offs (hand the unit to the station component's
  :class:`~repro.sim.stations.StationProcess`, whose service queue decides when
  the unit actually counts as served).

Splitting execution per agent keeps the event semantics local: each
:class:`AgentExecutor` owns one row of the (π, φ) matrices and only interprets
*its* state changes.  The :class:`PlanExecutor` drives all of them on the
shared clock so a run costs one engine event per tick, not one per agent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.plan import Plan
from ..warehouse.products import EMPTY_HANDED
from .engine import PRIORITY_AGENTS, SimulationEngine
from .stations import ShelfProcess, StationProcess
from .telemetry import TraceRecorder


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed against the given traffic system."""


class AgentExecutor:
    """Replays one agent's row of a plan and emits its events."""

    def __init__(
        self,
        agent_id: int,
        positions: np.ndarray,
        carrying: np.ndarray,
        owner_of: Dict[int, ComponentId],
        recorder: TraceRecorder,
        stations: Dict[ComponentId, StationProcess],
        shelves: Dict[ComponentId, ShelfProcess],
    ) -> None:
        self.agent_id = agent_id
        self.positions = positions
        self.carrying = carrying
        self.owner_of = owner_of
        self.recorder = recorder
        self.stations = stations
        self.shelves = shelves

    def step(self, t: int) -> None:
        """Interpret the transition from tick ``t`` to ``t + 1``."""
        src = int(self.positions[t])
        dst = int(self.positions[t + 1])
        before = int(self.carrying[t])
        after = int(self.carrying[t + 1])
        now = t + 1

        if src != dst:
            self.recorder.record_move(now, self.agent_id, src, dst)
            src_component = self.owner_of.get(src)
            dst_component = self.owner_of.get(dst)
            if (
                src_component is not None
                and dst_component is not None
                and src_component != dst_component
            ):
                # Cross-component advance: the live counterpart of one unit of
                # the synthesized flow f[src, dst, product] in this period.
                # The product crossing the boundary is the one carried *after*
                # the move (pickups/drop-offs resolve at the departure vertex).
                self.recorder.record_transition(now, src_component, dst_component, after)

        if before == after:
            return
        # The paper's condition (3): the load change at t+1 is decided at the
        # vertex occupied at t.
        component = self.owner_of.get(src)
        if before == EMPTY_HANDED:
            shelf = self.shelves.get(component) if component is not None else None
            if shelf is not None:
                if not shelf.pick(after, now):
                    self.recorder.record_stockout(now, component, after)
            else:
                # Pickup outside any shelving row (e.g. hand-authored plans):
                # still count the unit so conservation holds.
                self.recorder.record_pickup(now, -1 if component is None else component, after)
        elif after == EMPTY_HANDED:
            station = self.stations.get(component) if component is not None else None
            if station is not None:
                station.handoff(before)
            else:
                self.recorder.record_handoff(
                    now, -1 if component is None else component, before
                )
        # before != after != 0 (a swap) is structurally invalid; the plan
        # validator reports it, the executor simply replays the matrices.


class PlanExecutor:
    """Drives every agent executor on the engine's clock."""

    def __init__(
        self,
        engine: SimulationEngine,
        plan: Plan,
        system: TrafficSystem,
        recorder: TraceRecorder,
        stations: Dict[ComponentId, StationProcess],
        shelves: Dict[ComponentId, ShelfProcess],
        max_ticks: Optional[int] = None,
    ) -> None:
        if plan.warehouse is not system.warehouse:
            # Saved plans round-trip through JSON into a fresh Warehouse object,
            # so accept any warehouse that is structurally the same floorplan.
            ours = plan.warehouse.floorplan
            theirs = system.warehouse.floorplan
            if (
                ours.num_vertices != theirs.num_vertices
                or ours.stations != theirs.stations
                or ours.shelf_access != theirs.shelf_access
            ):
                raise ExecutionError(
                    "the plan's warehouse does not match the one the traffic system "
                    "was designed for"
                )
        self.engine = engine
        self.plan = plan
        self.recorder = recorder
        self.ticks = plan.horizon if max_ticks is None else min(max_ticks, plan.horizon)
        owner_of = {v: system.owner_of(v) for v in range(plan.warehouse.floorplan.num_vertices)}
        owner_of = {v: c for v, c in owner_of.items() if c is not None}
        self.agents: List[AgentExecutor] = [
            AgentExecutor(
                agent_id=agent,
                positions=plan.positions[agent],
                carrying=plan.carrying[agent],
                owner_of=owner_of,
                recorder=recorder,
                stations=stations,
                shelves=shelves,
            )
            for agent in range(plan.num_agents)
        ]

    def start(self) -> None:
        """Schedule the tick loop; tick t interprets the move into tick t."""
        self.engine.schedule_at(0, self._begin, PRIORITY_AGENTS)

    def _begin(self) -> None:
        self.recorder.record_positions(0, self.plan.positions[:, 0])
        for agent in range(self.plan.num_agents):
            product = int(self.plan.carrying[agent, 0])
            if product != EMPTY_HANDED:
                self.recorder.record_preload(agent, product)
        if self.ticks > 1:
            self.engine.schedule_at(1, self._tick, PRIORITY_AGENTS)

    def _tick(self) -> None:
        now = self.engine.now
        for agent in self.agents:
            agent.step(now - 1)
        self.recorder.record_positions(now, self.plan.positions[:, now])
        if now + 1 < self.ticks:
            self.engine.schedule_at(now + 1, self._tick, PRIORITY_AGENTS)
