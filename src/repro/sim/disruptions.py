"""Stochastic failure injection with online recovery (the resilience layer).

The nominal digital twin executes a realized plan exactly as committed; this
module degrades it the way a physical warehouse degrades.  A seedable
:class:`DisruptionProcess` injects first-class events into the event heap —
agent breakdowns with repair times, agent slowdowns, station outages,
temporarily blocked aisle edges, and demand surges in the order stream — and a
:class:`ResilientPlanExecutor` replaces the verbatim plan replay with a
*queued* execution: every agent keeps a progress pointer into its committed
trajectory, advances at most one step per tick, and yields deterministically
when a broken agent, a blocked edge or another queued agent occupies the cell
it wants.  Because motion now emerges from local conflict resolution instead
of the plan matrices, the realized trajectory is re-materialized as a fresh
:class:`~repro.warehouse.plan.Plan` — which must (and is tested to) satisfy
the same three feasibility conditions as the nominal plan.

Online recovery policies (enabled by :attr:`DisruptionConfig.recover`):

* **reassignment** — when an agent breaks down, its not-yet-started delivery
  legs (pickup → drop-off pairs) are handed to idle healthy agents, who route
  to the shelf and the station along shortest paths; the donor keeps walking
  its loop but its transferred load changes are suppressed, so no unit is
  picked or delivered twice;
* **windowed re-routing** — an agent blocked on a disabled edge longer than
  :attr:`DisruptionConfig.reroute_patience` ticks splices in a shortest
  detour around every currently-blocked edge (pure-motion steps only: a step
  that changes the carried product pins its decision vertex and is never
  detoured);
* **station failover** — a hand-off at an offline station's queue is diverted
  to the least-loaded online station, re-weighting the observed flows (which
  the AG-contract monitor then judges).

Everything stochastic draws from the engine's single seeded generator, so a
disrupted run is a pure function of (plan, seed, config); a zero-rate
configuration never binds any of this machinery and reproduces the nominal
trace byte for byte.  :class:`ScriptedDisruption` additionally allows exact,
rng-free schedules for golden tests and replayable incident analyses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.plan import Plan
from ..warehouse.products import EMPTY_HANDED, ProductId
from ..warehouse.workload import Workload
from .engine import PRIORITY_AGENTS, PRIORITY_DISRUPTIONS, SimulationEngine
from .stations import ShelfProcess, StationProcess
from .telemetry import TraceRecorder
from .workload_gen import OrderBook, product_mix_from_workload

#: Disruption families, in injection order (fixed for determinism).
DISRUPTION_KINDS = ("breakdown", "slowdown", "outage", "block", "surge")

#: Agent health states of the resilient executor.
AGENT_UP = 0
AGENT_DOWN = 1


class DisruptionError(ValueError):
    """Raised for invalid disruption specifications."""


@dataclass(frozen=True)
class ScriptedDisruption:
    """One exact, rng-free disruption event (golden tests, incident replay).

    ``target`` selects the subject — an agent id for ``breakdown``/
    ``slowdown``, a station-queue component id for ``outage``, an index into
    :func:`canonical_edges` for ``block`` (``-1`` = first eligible subject).
    ``duration`` of 0 falls back to the config's default for the kind;
    ``magnitude`` is the order count of a ``surge``.
    """

    tick: int
    kind: str
    target: int = -1
    duration: int = 0
    magnitude: int = 0

    def __post_init__(self) -> None:
        if self.kind not in DISRUPTION_KINDS:
            raise DisruptionError(
                f"unknown disruption kind {self.kind!r}; expected one of {DISRUPTION_KINDS}"
            )
        if self.tick < 1:
            raise DisruptionError(f"scripted disruptions start at tick 1, got {self.tick}")
        if self.duration < 0 or self.magnitude < 0:
            raise DisruptionError("duration and magnitude must be non-negative")


@dataclass(frozen=True)
class DisruptionConfig:
    """Knobs of the stochastic disruption process and the recovery policies.

    All rates are per-tick probabilities (per *agent* for breakdowns and
    slowdowns, per *system* for outages, blocks and surges).  The default
    configuration has every rate at zero and therefore
    :attr:`is_active` = False — the simulation runner then takes the nominal
    execution path untouched.
    """

    #: Per-agent per-tick breakdown probability.
    breakdown_rate: float = 0.0
    #: Ticks a broken agent stays down before its repair completes.
    repair_time: int = 25
    #: Per-agent per-tick slowdown probability.
    slowdown_rate: float = 0.0
    #: Ticks a slowdown lasts.
    slowdown_duration: int = 30
    #: A slowed agent executes one step every ``slowdown_factor`` ticks.
    slowdown_factor: int = 2
    #: Per-tick probability of one station-queue outage.
    outage_rate: float = 0.0
    #: Ticks an outage lasts.
    outage_duration: int = 40
    #: Per-tick probability of one aisle-edge block.
    block_rate: float = 0.0
    #: Ticks a blocked edge stays impassable.
    block_duration: int = 20
    #: Per-tick probability of a demand surge (burst of extra orders).
    surge_rate: float = 0.0
    #: Orders injected per surge.
    surge_orders: int = 5
    #: Orders fulfilled later than this count as *late* (0 = disabled).
    order_deadline: int = 0
    #: Cap on stochastically injected events (scripted events always fire).
    max_events: int = 1000
    #: Enable the online recovery policies (reassign / re-route / failover).
    recover: bool = True
    #: Ticks an agent waits at a blocked edge before splicing in a detour.
    reroute_patience: int = 3
    #: Exact, rng-free disruption schedule applied on top of the rates.
    schedule: Tuple[ScriptedDisruption, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "breakdown_rate",
            "slowdown_rate",
            "outage_rate",
            "block_rate",
            "surge_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DisruptionError(f"{name} must be in [0, 1], got {rate!r}")
        for name in ("repair_time", "slowdown_duration", "outage_duration", "block_duration"):
            if getattr(self, name) < 1:
                raise DisruptionError(f"{name} must be at least 1 tick")
        if self.slowdown_factor < 2:
            raise DisruptionError("slowdown_factor must be at least 2")
        if self.surge_orders < 1:
            raise DisruptionError("surge_orders must be at least 1")
        if self.order_deadline < 0:
            raise DisruptionError("order_deadline must be non-negative")
        if self.max_events < 0:
            raise DisruptionError("max_events must be non-negative")
        if self.reroute_patience < 1:
            raise DisruptionError("reroute_patience must be at least 1 tick")
        object.__setattr__(self, "schedule", tuple(self.schedule))

    @property
    def is_active(self) -> bool:
        """True when any disruption can actually occur."""
        return bool(self.schedule) or any(
            getattr(self, f"{kind}_rate") > 0.0 for kind in DISRUPTION_KINDS
        )

    def describe(self) -> str:
        if not self.is_active:
            return "none"
        parts = [
            f"{kind}:{getattr(self, f'{kind}_rate'):g}"
            for kind in DISRUPTION_KINDS
            if getattr(self, f"{kind}_rate") > 0.0
        ]
        if self.schedule:
            parts.append(f"scripted:{len(self.schedule)}")
        if not self.recover:
            parts.append("norecover")
        return ",".join(parts)


#: ``parse_disruptions`` entry names mapped to (rate field, duration field).
_SPEC_FIELDS = {
    "breakdown": ("breakdown_rate", "repair_time"),
    "slowdown": ("slowdown_rate", "slowdown_duration"),
    "outage": ("outage_rate", "outage_duration"),
    "block": ("block_rate", "block_duration"),
    "surge": ("surge_rate", "surge_orders"),
}


def parse_disruptions(spec: str) -> Optional[DisruptionConfig]:
    """``"none"`` / ``"breakdown:0.02:25,block:0.01"`` -> a disruption config.

    The grammar is comma-separated ``kind:rate[:duration]`` entries (for
    ``surge`` the third field is the orders-per-surge burst size), plus the
    modifiers ``deadline:N`` (late-order threshold) and ``norecover``
    (disable the online recovery policies).  ``"none"`` / ``""`` mean no
    disruption layer at all and return ``None``.
    """
    text = (spec or "").strip()
    if text in ("", "none"):
        return None
    overrides: Dict[str, object] = {}
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        name, _, rest = entry.partition(":")
        if name == "norecover":
            if rest:
                raise DisruptionError(f"norecover takes no arguments, got {entry!r}")
            overrides["recover"] = False
            continue
        if name == "deadline":
            try:
                overrides["order_deadline"] = int(rest)
            except ValueError as error:
                raise DisruptionError(f"invalid deadline {entry!r}: {error}") from error
            continue
        if name not in _SPEC_FIELDS:
            raise DisruptionError(
                f"unknown disruption {name!r}; expected one of "
                f"{tuple(_SPEC_FIELDS)} (or deadline:N, norecover)"
            )
        rate_field, duration_field = _SPEC_FIELDS[name]
        rate_text, _, duration_text = rest.partition(":")
        try:
            overrides[rate_field] = float(rate_text)
            if duration_text:
                overrides[duration_field] = int(duration_text)
        except ValueError as error:
            raise DisruptionError(
                f"invalid disruption entry {entry!r} "
                f"(use kind:rate[:duration]): {error}"
            ) from error
    if not any(rate_field in overrides for rate_field, _ in _SPEC_FIELDS.values()):
        # Modifier-only specs (just deadline:/norecover) would parse into an
        # inactive config and the run would silently take the nominal path.
        raise DisruptionError(
            f"disruption spec {spec!r} configures no disruption family; "
            f"add at least one of {tuple(_SPEC_FIELDS)} (or use 'none')"
        )
    try:
        return DisruptionConfig(**overrides)
    except DisruptionError:
        raise
    except TypeError as error:  # pragma: no cover - defensive
        raise DisruptionError(f"invalid disruption spec {spec!r}: {error}") from error


@dataclass
class ResilienceReport:
    """Resilience telemetry of one disrupted run (serialized with the trace).

    Every field is an integer so the report is a byte-stable part of the
    golden trace JSON; wall-clock quantities never enter it.
    """

    # -- injected disruptions ---------------------------------------------------
    breakdowns: int = 0
    slowdowns: int = 0
    outages: int = 0
    blocks: int = 0
    surges: int = 0
    surged_orders: int = 0
    # -- recovery actions ---------------------------------------------------------
    repairs: int = 0
    reassignments: int = 0
    reroutes: int = 0
    failovers: int = 0
    recovery_latency_total: int = 0
    # -- degradation accounting ---------------------------------------------------
    agent_downtime: int = 0
    slowdown_ticks: int = 0
    station_downtime: int = 0
    blocked_waits: int = 0
    conflict_waits: int = 0
    # -- service outcome ----------------------------------------------------------
    #: Units the nominal replay would have delivered by the same tick.
    nominal_units: int = 0
    units_served: int = 0
    dropped_orders: int = 0
    late_orders: int = 0
    #: Live contract-monitor breaches observed during the run.
    breach_windows: int = 0
    first_breach_tick: int = -1

    @property
    def num_disruptions(self) -> int:
        return self.breakdowns + self.slowdowns + self.outages + self.blocks + self.surges

    @property
    def num_recoveries(self) -> int:
        return self.repairs + self.reassignments + self.reroutes + self.failovers

    @property
    def throughput_retention(self) -> float:
        """Served units over the nominal delivery count (1.0 = no loss)."""
        if self.nominal_units <= 0:
            return 1.0
        return self.units_served / self.nominal_units

    @property
    def mean_recovery_latency(self) -> float:
        """Mean ticks from disruption onset to its recovery action."""
        resolved = self.repairs + self.reroutes
        if resolved == 0:
            return 0.0
        return self.recovery_latency_total / resolved

    def summary(self) -> str:
        return (
            f"resilience: {self.num_disruptions} disruption(s) "
            f"({self.breakdowns} breakdown, {self.slowdowns} slowdown, "
            f"{self.outages} outage, {self.blocks} block, {self.surges} surge), "
            f"{self.num_recoveries} recovery action(s) "
            f"({self.repairs} repair, {self.reassignments} reassign, "
            f"{self.reroutes} reroute, {self.failovers} failover), "
            f"retention {self.throughput_retention:.3f} "
            f"({self.units_served}/{self.nominal_units} units), "
            f"{self.dropped_orders} dropped / {self.late_orders} late order(s), "
            f"{self.breach_windows} breach window(s)"
        )

    def to_dict(self) -> Dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @staticmethod
    def from_dict(document: Dict[str, int]) -> "ResilienceReport":
        known = {f.name for f in fields(ResilienceReport)}
        return ResilienceReport(
            **{k: int(v) for k, v in document.items() if k in known}
        )


def canonical_edges(floorplan: FloorplanGraph) -> List[Tuple[VertexId, VertexId]]:
    """Every undirected floorplan edge as a sorted ``(u, v)`` pair, in order.

    The list is the deterministic sample space of the edge-block disruption
    and the index space of :attr:`ScriptedDisruption.target` for blocks.
    """
    edges: List[Tuple[VertexId, VertexId]] = []
    for u in range(floorplan.num_vertices):
        for v in floorplan.neighbors(u):
            if u < v:
                edges.append((u, v))
    return edges


def _edge_key(u: VertexId, v: VertexId) -> Tuple[VertexId, VertexId]:
    return (u, v) if u < v else (v, u)


def _bfs_avoiding(
    floorplan: FloorplanGraph,
    source: VertexId,
    target: VertexId,
    blocked: Set[Tuple[VertexId, VertexId]],
) -> Optional[List[VertexId]]:
    """Shortest path avoiding ``blocked`` edges (None when disconnected)."""
    if source == target:
        return [source]
    parents: Dict[VertexId, VertexId] = {source: source}
    frontier: Deque[VertexId] = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in floorplan.neighbors(u):
            if v in parents or _edge_key(u, v) in blocked:
                continue
            parents[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return path[::-1]
            frontier.append(v)
    return None


# ---------------------------------------------------------------------------
# resilient plan execution
# ---------------------------------------------------------------------------

@dataclass
class _AgentState:
    """Mutable execution state of one agent under the resilient executor."""

    pos: int
    carry: int
    #: Next plan step to execute (step ``s`` is the transition s -> s+1).
    plan_idx: int = 0
    status: int = AGENT_UP
    down_since: int = -1
    slow_until: int = -1
    slow_anchor: int = 0
    #: Pending detour vertices (pure motion around blocked edges).
    detour: Deque[int] = field(default_factory=deque)
    #: What completing the detour consumes: "plan" advances plan_idx,
    #: "extra" pops the synthetic queue head.
    detour_consumes: str = ""
    #: Synthetic recovery steps ``(dst, carry_after)`` (reassigned legs).
    extra: Deque[Tuple[int, int]] = field(default_factory=deque)
    #: Plan steps whose load change was transferred away (walk, don't touch).
    suppressed: Set[int] = field(default_factory=set)
    blocked_since: int = -1


class ResilientPlanExecutor:
    """Queued plan execution that tolerates injected disruptions.

    Semantics without any disruption are identical to
    :class:`~repro.sim.agents.PlanExecutor` — every agent executes exactly one
    plan step per tick and the conflict resolver degenerates to "everyone
    moves" because the committed plan is collision-free.  The class is still
    only used when a disruption layer is active, so nominal runs keep the
    verbatim replay path (and its byte-identical traces).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        plan: Plan,
        system: TrafficSystem,
        recorder: TraceRecorder,
        stations: Dict[ComponentId, StationProcess],
        shelves: Dict[ComponentId, ShelfProcess],
        config: DisruptionConfig,
        report: ResilienceReport,
        max_ticks: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.plan = plan
        self.system = system
        self.recorder = recorder
        self.stations = stations
        self.shelves = shelves
        self.config = config
        self.report = report
        self.floorplan = plan.warehouse.floorplan
        self.ticks = plan.horizon if max_ticks is None else min(max_ticks, plan.horizon)
        self.num_steps = plan.horizon - 1
        owner_of = {v: system.owner_of(v) for v in range(self.floorplan.num_vertices)}
        self.owner_of = {v: c for v, c in owner_of.items() if c is not None}
        self.states: List[_AgentState] = [
            _AgentState(pos=int(plan.positions[i, 0]), carry=int(plan.carrying[i, 0]))
            for i in range(plan.num_agents)
        ]
        #: Plan-step indices at which each agent's carried product changes.
        self.change_steps: List[np.ndarray] = [
            np.nonzero(plan.carrying[i, 1:] != plan.carrying[i, :-1])[0]
            for i in range(plan.num_agents)
        ]
        self.realized_positions = np.empty((plan.num_agents, self.ticks), dtype=np.int64)
        self.realized_carrying = np.empty((plan.num_agents, self.ticks), dtype=np.int64)
        #: Currently blocked edges (filled by the DisruptionProcess).
        self.blocked_edges: Dict[Tuple[VertexId, VertexId], int] = {}

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        self.engine.schedule_at(0, self._begin, PRIORITY_AGENTS)

    def _begin(self) -> None:
        positions = np.array([st.pos for st in self.states], dtype=np.int64)
        self.recorder.record_positions(0, positions)
        self.realized_positions[:, 0] = positions
        self.realized_carrying[:, 0] = [st.carry for st in self.states]
        for agent, st in enumerate(self.states):
            if st.carry != EMPTY_HANDED:
                self.recorder.record_preload(agent, st.carry)
        if self.ticks > 1:
            self.engine.schedule_at(1, self._tick, PRIORITY_AGENTS)

    # -- disruption hooks (called by the DisruptionProcess) --------------------------
    def edge_is_blocked(self, u: VertexId, v: VertexId) -> bool:
        return self.blocked_edges.get(_edge_key(u, v), 0) > self.engine.now

    def block_edge(self, u: VertexId, v: VertexId, until: int) -> None:
        key = _edge_key(u, v)
        self.blocked_edges[key] = max(self.blocked_edges.get(key, 0), until)

    def set_down(self, agent: int) -> None:
        st = self.states[agent]
        st.status = AGENT_DOWN
        st.down_since = self.engine.now

    def set_up(self, agent: int) -> int:
        """Repair an agent; returns the downtime (ticks) it accumulated."""
        st = self.states[agent]
        downtime = self.engine.now - st.down_since if st.down_since >= 0 else 0
        st.status = AGENT_UP
        st.down_since = -1
        return downtime

    def is_up(self, agent: int) -> bool:
        return self.states[agent].status == AGENT_UP

    def set_slow(self, agent: int, until: int) -> None:
        st = self.states[agent]
        st.slow_until = until
        st.slow_anchor = self.engine.now

    def is_slowed(self, agent: int) -> bool:
        return self.states[agent].slow_until > self.engine.now

    # -- recovery: leg reassignment ---------------------------------------------------
    def _is_idle(self, agent: int) -> bool:
        st = self.states[agent]
        if st.status != AGENT_UP or st.carry != EMPTY_HANDED:
            return False
        if st.detour or st.extra or self.is_slowed(agent):
            return False
        remaining = self.change_steps[agent]
        remaining = remaining[remaining >= st.plan_idx]
        return not any(int(s) not in st.suppressed for s in remaining)

    def _pending_legs(self, donor: int) -> List[Tuple[int, int, VertexId, VertexId, ProductId]]:
        """Transferable (pickup_step, drop_step, shelf, station, product) legs.

        The leg currently in progress (the donor already holds the unit) is
        excluded — the donor delivers it itself after repair.  Only legs that
        complete within the executed window (``ticks``) are transferable: a
        truncated run must not recover deliveries its nominal baseline never
        counts, or retention would exceed 1.
        """
        st = self.states[donor]
        positions = self.plan.positions[donor]
        carrying = self.plan.carrying[donor]
        legs: List[Tuple[int, int, VertexId, VertexId, ProductId]] = []
        cur = st.carry
        pickup: Optional[Tuple[int, VertexId, ProductId]] = None
        for s in range(st.plan_idx, min(self.num_steps, self.ticks - 1)):
            if s in st.suppressed:
                continue
            before, after = int(carrying[s]), int(carrying[s + 1])
            if before == after:
                continue
            if cur == EMPTY_HANDED and after != EMPTY_HANDED:
                pickup = (s, int(positions[s]), after)
                cur = after
            elif cur != EMPTY_HANDED and after == EMPTY_HANDED:
                if pickup is not None:
                    legs.append((pickup[0], s, pickup[1], int(positions[s]), pickup[2]))
                    pickup = None
                cur = EMPTY_HANDED
        return legs

    def reassign_from(self, donor: int) -> int:
        """Hand the donor's future delivery legs to idle agents; returns count."""
        legs = self._pending_legs(donor)
        if not legs:
            return 0
        helpers = [
            i for i in range(len(self.states)) if i != donor and self._is_idle(i)
        ]
        if not helpers:
            return 0
        now = self.engine.now
        donor_state = self.states[donor]
        route_end = {i: self.states[i].pos for i in helpers}
        transferred = 0
        for index, (pickup_s, drop_s, shelf_v, station_v, product) in enumerate(legs):
            helper = helpers[index % len(helpers)]
            to_shelf = self.floorplan.shortest_path(route_end[helper], shelf_v)
            to_station = self.floorplan.shortest_path(shelf_v, station_v)
            if to_shelf is None or to_station is None:
                continue
            helper_state = self.states[helper]
            # Abandon the helper's residual no-op plan motion: recruiting is
            # only allowed when no load-changing steps remain (see _is_idle).
            helper_state.plan_idx = self.num_steps
            for v in to_shelf[1:]:
                helper_state.extra.append((v, EMPTY_HANDED))
            helper_state.extra.append((shelf_v, product))  # pickup (stay step)
            for v in to_station[1:]:
                helper_state.extra.append((v, product))
            helper_state.extra.append((station_v, EMPTY_HANDED))  # drop-off
            route_end[helper] = station_v
            donor_state.suppressed.update((pickup_s, drop_s))
            self.recorder.record_recovery(now, "reassign", donor)
            self.report.reassignments += 1
            transferred += 1
        return transferred

    # -- recovery: windowed re-routing --------------------------------------------------
    def _try_reroute(self, agent: int, target: VertexId, consumes: str) -> bool:
        st = self.states[agent]
        blocked = {
            edge for edge, until in self.blocked_edges.items() if until > self.engine.now
        }
        path = _bfs_avoiding(self.floorplan, st.pos, target, blocked)
        if path is None or len(path) < 2:
            return False
        st.detour = deque(path[1:])
        st.detour_consumes = consumes
        waited = self.engine.now - st.blocked_since if st.blocked_since >= 0 else 0
        st.blocked_since = -1
        self.recorder.record_recovery(self.engine.now, "reroute", agent, waited)
        self.report.reroutes += 1
        self.report.recovery_latency_total += waited
        return True

    # -- the tick loop -------------------------------------------------------------------
    def _intent(self, agent: int) -> Tuple[int, str]:
        """The vertex this agent wants to occupy next tick, and why."""
        st = self.states[agent]
        now = self.engine.now
        if st.status == AGENT_DOWN:
            return st.pos, "down"
        if self.is_slowed(agent):
            self.report.slowdown_ticks += 1
            if (now - st.slow_anchor) % self.config.slowdown_factor != 0:
                return st.pos, "slow"
        if st.detour:
            return int(st.detour[0]), "detour"
        if st.plan_idx < self.num_steps:
            return int(self.plan.positions[agent, st.plan_idx + 1]), "plan"
        if st.extra:
            return int(st.extra[0][0]), "extra"
        return st.pos, "rest"

    def _handle_blocked(self, agent: int, mode: str, target: int) -> Tuple[int, str]:
        """An intended move crosses a blocked edge: wait, or splice a detour."""
        st = self.states[agent]
        now = self.engine.now
        if st.blocked_since < 0:
            st.blocked_since = now
        self.report.blocked_waits += 1
        pure_motion = True
        if mode == "plan":
            s = st.plan_idx
            before = int(self.plan.carrying[agent, s])
            after = int(self.plan.carrying[agent, s + 1])
            pure_motion = before == after or s in st.suppressed
        elif mode == "extra":
            pure_motion = int(st.extra[0][1]) == st.carry
        if (
            self.config.recover
            and pure_motion
            and now - st.blocked_since >= self.config.reroute_patience
        ):
            consumes = mode if mode in ("plan", "extra") else st.detour_consumes
            if mode == "detour":
                # Re-route to the detour's own endpoint; _try_reroute replaces
                # the detour only on success, so a failed search leaves the
                # agent on its (blocked but still chained) old detour.
                target = int(st.detour[-1])
            if self._try_reroute(agent, target, consumes):
                next_v = int(st.detour[0])
                if not self.edge_is_blocked(st.pos, next_v):
                    return next_v, "detour"
        return st.pos, "blocked"

    def _resolve_moves(self, current: List[int], desired: List[int]) -> List[bool]:
        """Deterministic conflict resolution: who actually moves this tick.

        Stayers keep their vertex; a mover advances iff its target is vacated
        this tick and no lower-id agent claimed it.  Head-on swaps are denied
        (both wait); rotation cycles of three or more agents are granted as a
        unit — they are vertex-disjoint and legal under condition (2).
        """
        n = len(current)
        occupant = {v: i for i, v in enumerate(current)}
        granted: List[Optional[bool]] = [None] * n
        claimed: Dict[int, int] = {}
        for i in range(n):
            if desired[i] == current[i]:
                granted[i] = True
                claimed[current[i]] = i
        progress = True
        while progress:
            progress = False
            for i in range(n):
                if granted[i] is not None:
                    continue
                target = desired[i]
                owner = claimed.get(target)
                if owner is not None and owner != i:
                    granted[i] = False
                    progress = True
                    continue
                j = occupant.get(target)
                if j is None:
                    granted[i] = True
                    claimed[target] = i
                    progress = True
                    continue
                if desired[j] == current[i]:  # head-on swap: both wait
                    granted[i] = False
                    if granted[j] is None:
                        granted[j] = False
                    progress = True
                    continue
                if granted[j] is False:
                    granted[i] = False
                    progress = True
                elif granted[j] is True:
                    granted[i] = True
                    claimed[target] = i
                    progress = True
                # granted[j] is None: occupant undecided — wait for a later pass.
        for i in range(n):
            if granted[i] is not None:
                continue
            chain = [i]
            j = occupant.get(desired[i])
            while j is not None and granted[j] is None and j not in chain:
                chain.append(j)
                j = occupant.get(desired[j])
            if j == i and len(chain) > 2:
                for k in chain:
                    granted[k] = True
                    claimed[desired[k]] = k
            else:
                for k in chain:
                    if granted[k] is None:
                        granted[k] = False
        return [bool(g) for g in granted]

    def _apply_change(self, agent: int, decision_vertex: int, before: int, after: int) -> None:
        """Pickup / drop-off semantics, identical to the nominal executor."""
        now = self.engine.now
        component = self.owner_of.get(decision_vertex)
        if before == EMPTY_HANDED:
            shelf = self.shelves.get(component) if component is not None else None
            if shelf is not None:
                if not shelf.pick(after, now):
                    self.recorder.record_stockout(now, component, after)
            else:
                self.recorder.record_pickup(
                    now, -1 if component is None else component, after
                )
        elif after == EMPTY_HANDED:
            station = self.stations.get(component) if component is not None else None
            if station is not None:
                if not station.online and self.config.recover:
                    failover = self._failover_target(station)
                    if failover is not None:
                        self.recorder.record_recovery(now, "failover", failover.component_id)
                        self.report.failovers += 1
                        failover.handoff(before)
                        return
                station.handoff(before)
            else:
                self.recorder.record_handoff(
                    now, -1 if component is None else component, before
                )

    def _failover_target(self, down: StationProcess) -> Optional[StationProcess]:
        candidates = [
            s
            for cid, s in sorted(self.stations.items())
            if s.online and s is not down
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (s.queue_length, s.component_id))

    def _tick(self) -> None:
        now = self.engine.now
        states = self.states
        current = [st.pos for st in states]
        desired: List[int] = []
        modes: List[str] = []
        for agent, st in enumerate(states):
            target, mode = self._intent(agent)
            if target != st.pos and self.edge_is_blocked(st.pos, target):
                target, mode = self._handle_blocked(agent, mode, target)
            if mode != "blocked":
                # The blocked streak tracks *consecutive* edge-blocked ticks
                # only; any other stall reason (breakdown, conflict wait,
                # slow phase) re-arms the reroute patience window.
                st.blocked_since = -1
            desired.append(target)
            modes.append(mode)

        granted = self._resolve_moves(current, desired)

        for agent, st in enumerate(states):
            mode = modes[agent]
            if mode in ("down", "slow", "rest", "blocked"):
                continue
            if not granted[agent] and desired[agent] != st.pos:
                self.report.conflict_waits += 1
                continue
            src, dst = st.pos, desired[agent]
            before = st.carry
            if mode == "plan":
                # A load change only happens where the *plan* changes (and the
                # step was not transferred away).  Comparing the agent's actual
                # carry against the plan's profile would misfire on a donor
                # whose leg was reassigned: its actual carry stays empty while
                # the plan's profile is loaded between the suppressed pickup
                # and drop-off, and the first such step would spuriously
                # re-pick the product at an arbitrary vertex.
                s = st.plan_idx
                planned_before = int(self.plan.carrying[agent, s])
                planned_after = int(self.plan.carrying[agent, s + 1])
                if s in st.suppressed or planned_before == planned_after:
                    after = before
                else:
                    after = planned_after
            elif mode == "extra":
                after = int(st.extra[0][1])
            else:  # detour: pure motion
                after = before
            if src != dst:
                self.recorder.record_move(now, agent, src, dst)
                src_component = self.owner_of.get(src)
                dst_component = self.owner_of.get(dst)
                if (
                    src_component is not None
                    and dst_component is not None
                    and src_component != dst_component
                ):
                    self.recorder.record_transition(now, src_component, dst_component, after)
            if before != after:
                self._apply_change(agent, src, before, after)
            st.pos = dst
            st.carry = after
            if mode == "plan":
                st.plan_idx += 1
            elif mode == "extra":
                st.extra.popleft()
            else:  # detour
                st.detour.popleft()
                if not st.detour:
                    if st.detour_consumes == "plan":
                        st.plan_idx += 1
                    elif st.detour_consumes == "extra" and st.extra:
                        st.extra.popleft()
                    st.detour_consumes = ""

        positions = np.array([st.pos for st in states], dtype=np.int64)
        self.recorder.record_positions(now, positions)
        self.realized_positions[:, now] = positions
        self.realized_carrying[:, now] = [st.carry for st in states]
        if now + 1 < self.ticks:
            self.engine.schedule_at(now + 1, self._tick, PRIORITY_AGENTS)

    # -- artifacts -----------------------------------------------------------------------
    def realized_plan(self) -> Plan:
        """The motion that actually happened, as a validator-checkable plan."""
        return Plan(
            positions=self.realized_positions.copy(),
            carrying=self.realized_carrying.copy(),
            warehouse=self.plan.warehouse,
            metadata={**self.plan.metadata, "disrupted": 1.0},
        )


# ---------------------------------------------------------------------------
# the stochastic disruption process
# ---------------------------------------------------------------------------

class DisruptionProcess:
    """Injects disruptions as first-class events on the engine's heap.

    One event per tick (in the :data:`~repro.sim.engine.PRIORITY_DISRUPTIONS`
    band, before agents act) fires the scripted schedule, then draws each
    stochastic family in a fixed order from the engine's seeded generator, and
    finally accumulates the degradation accounting.  Repairs and outage ends
    are scheduled as separate future events in the same band.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: DisruptionConfig,
        recorder: TraceRecorder,
        executor: ResilientPlanExecutor,
        stations: Dict[ComponentId, StationProcess],
        report: ResilienceReport,
        until: int,
        book: Optional[OrderBook] = None,
        workload: Optional[Workload] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.recorder = recorder
        self.executor = executor
        self.stations = stations
        self.report = report
        self.until = until
        self.book = book
        self.edges = canonical_edges(executor.floorplan)
        self.num_agents = len(executor.states)
        self._station_down: Dict[ComponentId, int] = {}
        self._events_left = config.max_events
        self._scripted = sorted(config.schedule, key=lambda ev: ev.tick)
        self._scripted_next = 0
        self._mix: Optional[Tuple[Tuple[ProductId, ...], np.ndarray]] = None
        if workload is not None and book is not None and workload.total_units > 0:
            self._mix = product_mix_from_workload(workload)

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        if self.until >= 1:
            self.engine.every(1, self._tick, PRIORITY_DISRUPTIONS, start=1, until=self.until)

    def _tick(self) -> None:
        now = self.engine.now
        while (
            self._scripted_next < len(self._scripted)
            and self._scripted[self._scripted_next].tick <= now
        ):
            self._fire_scripted(self._scripted[self._scripted_next])
            self._scripted_next += 1
        rng = self.engine.rng
        if self.config.breakdown_rate > 0.0:
            for agent in range(self.num_agents):
                if self._events_left <= 0:
                    break
                if self.executor.is_up(agent) and rng.random() < self.config.breakdown_rate:
                    self._break_agent(agent, self.config.repair_time)
        if self.config.slowdown_rate > 0.0:
            for agent in range(self.num_agents):
                if self._events_left <= 0:
                    break
                if (
                    self.executor.is_up(agent)
                    and not self.executor.is_slowed(agent)
                    and rng.random() < self.config.slowdown_rate
                ):
                    self._slow_agent(agent, self.config.slowdown_duration)
        if (
            self.config.outage_rate > 0.0
            and self._events_left > 0
            and rng.random() < self.config.outage_rate
        ):
            online = [cid for cid, s in sorted(self.stations.items()) if s.online]
            if online:
                target = online[int(rng.integers(len(online)))]
                self._station_outage(target, self.config.outage_duration)
        if (
            self.config.block_rate > 0.0
            and self._events_left > 0
            and rng.random() < self.config.block_rate
        ):
            index = int(rng.integers(len(self.edges)))
            self._block_edge(index, self.config.block_duration)
        if (
            self.config.surge_rate > 0.0
            and self._events_left > 0
            and rng.random() < self.config.surge_rate
        ):
            self._surge(self.config.surge_orders, scripted=False)
        # -- degradation accounting (after this tick's injections) ----------------
        self.report.agent_downtime += sum(
            1 for agent in range(self.num_agents) if not self.executor.is_up(agent)
        )
        self.report.station_downtime += len(self._station_down)

    # -- scripted dispatch -----------------------------------------------------------
    def _fire_scripted(self, event: ScriptedDisruption) -> None:
        if event.kind == "breakdown":
            agent = self._pick_agent(event.target, require_up=True)
            if agent is not None:
                self._break_agent(agent, event.duration or self.config.repair_time, scripted=True)
        elif event.kind == "slowdown":
            agent = self._pick_agent(event.target, require_up=True)
            if agent is not None:
                self._slow_agent(
                    agent, event.duration or self.config.slowdown_duration, scripted=True
                )
        elif event.kind == "outage":
            online = [cid for cid, s in sorted(self.stations.items()) if s.online]
            target = event.target if event.target in online else (online[0] if online else None)
            if target is not None:
                self._station_outage(
                    target, event.duration or self.config.outage_duration, scripted=True
                )
        elif event.kind == "block":
            index = event.target if 0 <= event.target < len(self.edges) else 0
            if self.edges:
                self._block_edge(
                    index, event.duration or self.config.block_duration, scripted=True
                )
        else:  # surge
            self._surge(event.magnitude or self.config.surge_orders, scripted=True)

    def _pick_agent(self, target: int, require_up: bool) -> Optional[int]:
        if 0 <= target < self.num_agents and (
            not require_up or self.executor.is_up(target)
        ):
            return target
        for agent in range(self.num_agents):
            if not require_up or self.executor.is_up(agent):
                return agent
        return None

    # -- injections ------------------------------------------------------------------
    def _spend(self, scripted: bool) -> None:
        if not scripted:
            self._events_left -= 1

    def _break_agent(self, agent: int, repair_ticks: int, scripted: bool = False) -> None:
        now = self.engine.now
        self._spend(scripted)
        self.executor.set_down(agent)
        self.recorder.record_disruption(now, "breakdown", agent)
        self.report.breakdowns += 1
        if self.config.recover:
            self.executor.reassign_from(agent)
        self.engine.schedule(repair_ticks, lambda a=agent: self._repair(a), PRIORITY_DISRUPTIONS)

    def _repair(self, agent: int) -> None:
        if self.executor.is_up(agent):  # pragma: no cover - defensive
            return
        downtime = self.executor.set_up(agent)
        self.recorder.record_recovery(self.engine.now, "repair", agent, downtime)
        self.report.repairs += 1
        self.report.recovery_latency_total += downtime

    def _slow_agent(self, agent: int, duration: int, scripted: bool = False) -> None:
        now = self.engine.now
        self._spend(scripted)
        self.executor.set_slow(agent, now + duration)
        self.recorder.record_disruption(now, "slowdown", agent)
        self.report.slowdowns += 1

    def _station_outage(
        self, component: ComponentId, duration: int, scripted: bool = False
    ) -> None:
        now = self.engine.now
        self._spend(scripted)
        station = self.stations[component]
        station.go_offline()
        self._station_down[component] = now
        self.recorder.record_disruption(now, "outage", component)
        self.report.outages += 1
        self.engine.schedule(
            duration, lambda c=component: self._station_restore(c), PRIORITY_DISRUPTIONS
        )

    def _station_restore(self, component: ComponentId) -> None:
        self._station_down.pop(component, None)
        self.stations[component].go_online()

    def _block_edge(self, index: int, duration: int, scripted: bool = False) -> None:
        now = self.engine.now
        self._spend(scripted)
        u, v = self.edges[index]
        self.executor.block_edge(u, v, now + duration)
        self.recorder.record_disruption(now, "block", index)
        self.report.blocks += 1

    def _surge(self, orders: int, scripted: bool) -> None:
        now = self.engine.now
        self._spend(scripted)
        self.recorder.record_disruption(now, "surge", orders)
        self.report.surges += 1
        if self._mix is None or self.book is None:
            return
        products, probabilities = self._mix
        choices = self.engine.rng.choice(len(products), size=orders, p=probabilities)
        for index in choices:
            self.book.add_order(products[int(index)], now)
        self.report.surged_orders += orders


def nominal_deliveries_by(plan: Plan, ticks: int) -> int:
    """Units the plan's verbatim replay delivers strictly before ``ticks``.

    This is the retention baseline: with instantaneous station service the
    nominal twin serves exactly these units, so
    ``units_served / nominal_deliveries_by(...)`` is the throughput retention
    (an optimistic bound under stochastic service models).
    """
    return sum(1 for _, t, _ in plan.deliveries() if t < ticks)


def severity_ladder(base: DisruptionConfig, rates: Sequence[float]) -> List[DisruptionConfig]:
    """The base config with every non-zero rate scaled to each given level.

    Used by the metamorphic tests: a ladder of increasingly severe variants of
    one disruption profile whose measured throughput must never beat nominal.
    """
    active = [
        f"{kind}_rate" for kind in DISRUPTION_KINDS if getattr(base, f"{kind}_rate") > 0.0
    ] or ["breakdown_rate"]
    return [replace(base, **{name: float(rate) for name in active}) for rate in rates]
