"""Stochastic order workloads layered over :mod:`repro.warehouse.workload`.

The static side of the methodology compresses demand into one vector ``w``;
the digital twin re-expands it into an *order stream* arriving over simulated
time.  Two generators are provided:

* :class:`DeterministicOrderStream` — every demanded unit is an order present
  at tick 0 (the exact semantics of the paper's WSP instance; the acceptance
  baseline).
* :class:`PoissonOrderStream` — orders arrive as a Poisson process at a
  configurable rate, each requesting one unit of a product drawn from a
  product-mix distribution (by default the workload's demand mix).  All
  randomness comes from the engine's seeded generator, so streams are
  reproducible.

The :class:`OrderBook` matches served units to orders FIFO per product and
records per-order fulfillment latency.  Units served with no order waiting are
banked as buffer stock (the realized plans deliberately over-deliver), so a
later order for that product is fulfilled instantly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..warehouse.products import ProductId
from ..warehouse.workload import Workload
from .engine import PRIORITY_ARRIVALS, SimulationEngine
from .telemetry import TraceRecorder


class OrderStreamError(ValueError):
    """Raised for invalid order-stream specifications."""


@dataclass
class Order:
    """One customer order for a single unit of one product."""

    order_id: int
    product: ProductId
    arrival: int
    fulfilled: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.fulfilled is None:
            return None
        return self.fulfilled - self.arrival


class OrderBook:
    """FIFO matching of served units to orders, with over-delivery banking."""

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder
        self.orders: List[Order] = []
        self._pending: Dict[ProductId, Deque[Order]] = {}
        self._buffer: Dict[ProductId, int] = {}

    # -- arrivals -----------------------------------------------------------------
    def add_order(self, product: ProductId, now: int) -> Order:
        order = Order(order_id=len(self.orders), product=product, arrival=now)
        self.orders.append(order)
        self.recorder.record_order_created(now, order.order_id, product)
        banked = self._buffer.get(product, 0)
        if banked > 0:
            self._buffer[product] = banked - 1
            self._fulfill(order, now)
        else:
            self._pending.setdefault(product, deque()).append(order)
        return order

    # -- service ------------------------------------------------------------------
    def unit_served(self, product: ProductId, now: int) -> Optional[Order]:
        """A station finished one unit of ``product``; fulfill the oldest order."""
        queue = self._pending.get(product)
        if queue:
            order = queue.popleft()
            self._fulfill(order, now)
            return order
        self._buffer[product] = self._buffer.get(product, 0) + 1
        return None

    def _fulfill(self, order: Order, now: int) -> None:
        order.fulfilled = now
        self.recorder.record_order_fulfilled(
            now, order.order_id, order.product, order.latency or 0
        )

    # -- state --------------------------------------------------------------------
    @property
    def num_orders(self) -> int:
        return len(self.orders)

    @property
    def num_pending(self) -> int:
        return sum(len(q) for q in self._pending.values())

    @property
    def num_fulfilled(self) -> int:
        return len(self.orders) - self.num_pending

    def buffered_units(self) -> int:
        return sum(self._buffer.values())

    def pending_per_product(self) -> Dict[ProductId, int]:
        return {p: len(q) for p, q in self._pending.items() if q}


def product_mix_from_workload(workload: Workload) -> Tuple[Tuple[ProductId, ...], np.ndarray]:
    """The workload's demand vector as a sampling distribution over products."""
    products = workload.requested_products()
    if not products:
        raise OrderStreamError("the workload demands no products; nothing to sample")
    weights = np.array([workload.demand(p) for p in products], dtype=float)
    return products, weights / weights.sum()


class DeterministicOrderStream:
    """All demanded units arrive as orders at tick 0, round-robin over products.

    The interleaving mirrors the delivery schedule's product interleaving so
    early deliveries fulfill early orders of every product.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def bind(self, engine: SimulationEngine, book: OrderBook) -> None:
        remaining = dict(self.workload.as_dict())

        def emit_all() -> None:
            while remaining:
                for product in sorted(list(remaining)):
                    book.add_order(product, engine.now)
                    remaining[product] -= 1
                    if remaining[product] == 0:
                        del remaining[product]

        engine.schedule_at(0, emit_all, PRIORITY_ARRIVALS)

    def describe(self) -> str:
        return f"deterministic({self.workload.total_units} orders at t=0)"


class PoissonOrderStream:
    """Poisson order arrivals with product-mix sampling.

    Parameters
    ----------
    rate:
        Expected orders per tick (λ of the per-tick Poisson draw).
    workload:
        Source of the product mix (and of nothing else — total volume is
        governed by ``rate`` and the horizon).
    mix:
        Explicit ``(products, probabilities)`` overriding the workload mix.
    until:
        Last arrival tick (inclusive); ``None`` keeps arriving as long as the
        engine runs.
    """

    def __init__(
        self,
        rate: float,
        workload: Optional[Workload] = None,
        mix: Optional[Tuple[Sequence[ProductId], Sequence[float]]] = None,
        until: Optional[int] = None,
    ) -> None:
        if not rate > 0:  # also rejects NaN
            raise OrderStreamError(f"arrival rate must be positive, got {rate}")
        if mix is not None:
            products, probs = mix
            probabilities = np.asarray(probs, dtype=float)
            if len(products) != len(probabilities) or not len(products):
                raise OrderStreamError("mix products and probabilities must align")
            probabilities = probabilities / probabilities.sum()
            self.products: Tuple[ProductId, ...] = tuple(int(p) for p in products)
            self.probabilities = probabilities
        elif workload is not None:
            self.products, self.probabilities = product_mix_from_workload(workload)
        else:
            raise OrderStreamError("provide either a workload or an explicit mix")
        self.rate = float(rate)
        self.until = until

    def bind(self, engine: SimulationEngine, book: OrderBook) -> None:
        def tick() -> None:
            count = int(engine.rng.poisson(self.rate))
            if count > 0:
                choices = engine.rng.choice(
                    len(self.products), size=count, p=self.probabilities
                )
                for index in choices:
                    book.add_order(self.products[int(index)], engine.now)

        engine.every(1, tick, PRIORITY_ARRIVALS, start=0, until=self.until)

    def describe(self) -> str:
        horizon = "∞" if self.until is None else str(self.until)
        return (
            f"poisson(rate={self.rate:g}/tick over {len(self.products)} products, "
            f"until t={horizon})"
        )
