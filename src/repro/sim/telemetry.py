"""Trace recording: everything the simulation observes, in one artifact.

The :class:`TraceRecorder` is the single sink every process writes to; at the
end of a run it freezes into a :class:`SimulationTrace` — per-vertex visit
counts (the congestion heatmap's raw data), per-cycle-period flow counts (the
quantities the contract monitor binds to the synthesized flow variables),
per-tick station queue lengths, order latencies, and an ordered event log.

The event log is the determinism witness: two runs of the same configuration
and seed must produce *identical* logs, which the test-suite asserts.  Flow
conservation is checkable from the aggregates alone: every order is created
then served or still pending, every picked unit is handed off or still being
carried, every hand-off is served or still queued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..traffic.system import ComponentId
from ..warehouse.products import ProductId

#: Event-log record kinds.
EV_MOVE = "move"
EV_TRANSITION = "transition"
EV_PICKUP = "pickup"
EV_HANDOFF = "handoff"
EV_SERVED = "served"
EV_ORDER = "order"
EV_FULFILLED = "fulfilled"
EV_STOCKOUT = "stockout"
EV_DISRUPTION = "disruption"
EV_RECOVERY = "recovery"

TraceEvent = Tuple  # (kind, tick, *details) — plain tuples, cheap and comparable


@dataclass
class SimulationTrace:
    """The frozen observation record of one simulation run."""

    ticks: int
    num_agents: int
    cycle_time: int
    seed: int
    #: Number of *complete* cycle periods observed.
    periods: int
    #: Per-vertex visit counts (agent-ticks spent on each vertex).
    visits: np.ndarray
    #: Per-period flow counts keyed like the synthesized flow variables:
    #: ``transitions[(i, j, k)][p]`` = agents moving Ci -> Cj carrying ρk in period p
    #: (k = 0 means empty-handed).
    transitions: Dict[Tuple[ComponentId, ComponentId, ProductId], np.ndarray]
    pickups: Dict[Tuple[ComponentId, ProductId], np.ndarray]
    handoffs: Dict[Tuple[ComponentId, ProductId], np.ndarray]
    served: Dict[Tuple[ComponentId, ProductId], np.ndarray]
    #: Per-tick queue length of every station-queue component.
    queue_samples: Dict[ComponentId, np.ndarray]
    #: Fulfillment latency (ticks) of every served order, in service order.
    order_latencies: List[int]
    orders_created: int
    orders_served: int
    units_picked: int
    #: Units carried by agents already at tick 0 (picked before the run began).
    units_preloaded: int
    units_handed_off: int
    units_served: int
    stockouts: int
    #: Ordered event log (determinism witness); None when recording is off.
    events: Optional[List[TraceEvent]] = None
    #: Realized per-agent vertex paths (grid-routed and disrupted runs only;
    #: the abstract mode replays the plan verbatim, so archiving the plan
    #: suffices there).
    agent_paths: Optional[List[Tuple[int, ...]]] = None
    #: Resilience telemetry of a disrupted run (:class:`~repro.sim.disruptions.
    #: ResilienceReport`); ``None`` for nominal runs, whose serialized traces
    #: must stay byte-identical to the pre-disruption schema.
    resilience: Optional["ResilienceReport"] = None  # noqa: F821 - forward ref
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Serialized observability span tree of the run (``repro.obs``);
    #: ``None`` unless tracing was enabled — nominal traces must stay
    #: byte-identical to the pre-observability schema.
    obs: Optional[Dict] = None

    # -- aggregate queries -------------------------------------------------------
    @property
    def orders_pending(self) -> int:
        return self.orders_created - self.orders_served

    @property
    def station_backlog(self) -> int:
        """Units handed over but not yet served when the run ended."""
        return self.units_handed_off - self.units_served

    @property
    def units_in_transit(self) -> int:
        """Units picked up (or preloaded, or stockout phantoms) not yet handed over."""
        return (
            self.units_picked
            + self.units_preloaded
            + self.stockouts
            - self.units_handed_off
        )

    def realized_throughput(self) -> float:
        """Served units per tick over the whole run."""
        return self.units_served / max(1, self.ticks - 1)

    def served_units_of(self, product: ProductId) -> int:
        return int(
            sum(counts.sum() for (_, p), counts in self.served.items() if p == product)
        )

    def served_per_product(self) -> Dict[ProductId, int]:
        totals: Dict[ProductId, int] = {}
        for (_, product), counts in self.served.items():
            totals[product] = totals.get(product, 0) + int(counts.sum())
        return totals

    def mean_queue_length(self) -> float:
        if not self.queue_samples:
            return 0.0
        return float(np.mean([s.mean() for s in self.queue_samples.values()]))

    def max_queue_length(self) -> int:
        if not self.queue_samples:
            return 0
        return int(max(s.max() for s in self.queue_samples.values()))

    def mean_order_latency(self) -> Optional[float]:
        if not self.order_latencies:
            return None
        return float(np.mean(self.order_latencies))

    def p95_order_latency(self) -> Optional[float]:
        if not self.order_latencies:
            return None
        return float(np.percentile(self.order_latencies, 95))

    # -- invariants ---------------------------------------------------------------
    def conservation_report(self) -> List[str]:
        """Human-readable flow-conservation violations (empty = conserved).

        The telemetry is conserved by construction; a non-empty report means a
        process wrote inconsistent records and is a simulator bug.
        """
        problems: List[str] = []
        if self.orders_served > self.orders_created:
            problems.append(
                f"served {self.orders_served} orders but only {self.orders_created} were created"
            )
        if self.units_served > self.units_handed_off:
            problems.append(
                f"served {self.units_served} units but only {self.units_handed_off} were handed off"
            )
        # A stockout is a unit the plan picks but the twin's inventory lacks;
        # the executor replays the plan's carry anyway, so the phantom unit
        # still flows downstream and counts as available here.
        available = self.units_picked + self.units_preloaded + self.stockouts
        if self.units_handed_off > available:
            problems.append(
                f"handed off {self.units_handed_off} units but only {available} were "
                f"picked ({self.units_picked}), preloaded ({self.units_preloaded}) "
                f"or stockout phantoms ({self.stockouts})"
            )
        recorded_served = int(sum(c.sum() for c in self.served.values()))
        if recorded_served > self.units_served:
            problems.append(
                f"per-period served counts ({recorded_served}) exceed the served total "
                f"({self.units_served})"
            )
        return problems

    def summary(self) -> str:
        return (
            f"trace: {self.ticks} ticks, {self.num_agents} agents, {self.periods} periods, "
            f"{self.units_served} units served ({self.station_backlog} queued), "
            f"{self.orders_served}/{self.orders_created} orders fulfilled"
        )


class TraceRecorder:
    """Mutable sink the simulation processes write observations to."""

    def __init__(
        self,
        num_vertices: int,
        num_agents: int,
        cycle_time: int,
        ticks: int,
        seed: int = 0,
        record_events: bool = True,
    ) -> None:
        if cycle_time <= 0:
            raise ValueError("cycle_time must be positive")
        self.num_vertices = num_vertices
        self.num_agents = num_agents
        self.cycle_time = cycle_time
        self.ticks = ticks
        self.seed = seed
        #: Complete periods that fit into the run's ticks - 1 move steps.
        self.periods = max(1, (ticks - 1) // cycle_time) if ticks > 1 else 1
        self.visits = np.zeros(num_vertices, dtype=np.int64)
        self._transitions: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._pickups: Dict[Tuple[int, int], np.ndarray] = {}
        self._handoffs: Dict[Tuple[int, int], np.ndarray] = {}
        self._served: Dict[Tuple[int, int], np.ndarray] = {}
        self._queues: Dict[int, np.ndarray] = {}
        self.order_latencies: List[int] = []
        self.orders_created = 0
        self.orders_served = 0
        self.units_picked = 0
        self.units_preloaded = 0
        self.units_handed_off = 0
        self.units_served = 0
        self.stockouts = 0
        self.events: Optional[List[TraceEvent]] = [] if record_events else None

    # -- helpers -----------------------------------------------------------------
    def _period_of(self, tick: int) -> Optional[int]:
        """Complete-period index of a tick's move step (None outside the window)."""
        period = (tick - 1) // self.cycle_time if tick > 0 else 0
        if 0 <= period < self.periods:
            return period
        return None

    def _bump(self, table: Dict, key, tick: int) -> None:
        period = self._period_of(tick)
        if period is None:
            return
        counts = table.get(key)
        if counts is None:
            counts = np.zeros(self.periods, dtype=np.int64)
            table[key] = counts
        counts[period] += 1

    def _log(self, *record) -> None:
        if self.events is not None:
            self.events.append(record)

    # -- recording API -------------------------------------------------------------
    def record_positions(self, tick: int, vertices: np.ndarray) -> None:
        """Per-tick agent positions; feeds the congestion (visit-count) map."""
        np.add.at(self.visits, vertices, 1)

    def record_move(self, tick: int, agent: int, src: int, dst: int) -> None:
        self._log(EV_MOVE, tick, agent, src, dst)

    def record_transition(
        self, tick: int, source: ComponentId, target: ComponentId, product: ProductId
    ) -> None:
        """An agent crossed from component ``source`` to ``target`` carrying ``product``."""
        self._bump(self._transitions, (source, target, product), tick)
        self._log(EV_TRANSITION, tick, source, target, product)

    def record_pickup(self, tick: int, component: ComponentId, product: ProductId) -> None:
        self.units_picked += 1
        self._bump(self._pickups, (component, product), tick)
        self._log(EV_PICKUP, tick, component, product)

    def record_preload(self, agent: int, product: ProductId) -> None:
        """An agent starts the run already carrying ``product`` (picked pre-run)."""
        self.units_preloaded += 1
        self._log(EV_PICKUP, 0, -1, product, agent)

    def record_handoff(self, tick: int, component: ComponentId, product: ProductId) -> None:
        self.units_handed_off += 1
        self._bump(self._handoffs, (component, product), tick)
        self._log(EV_HANDOFF, tick, component, product)

    def record_served(self, tick: int, component: ComponentId, product: ProductId) -> None:
        self.units_served += 1
        self._bump(self._served, (component, product), tick)
        self._log(EV_SERVED, tick, component, product)

    def record_stockout(self, tick: int, component: ComponentId, product: ProductId) -> None:
        self.stockouts += 1
        self._log(EV_STOCKOUT, tick, component, product)

    def record_order_created(self, tick: int, order_id: int, product: ProductId) -> None:
        self.orders_created += 1
        self._log(EV_ORDER, tick, order_id, product)

    def record_order_fulfilled(
        self, tick: int, order_id: int, product: ProductId, latency: int
    ) -> None:
        self.orders_served += 1
        self.order_latencies.append(latency)
        self._log(EV_FULFILLED, tick, order_id, product, latency)

    def record_disruption(self, tick: int, kind: str, subject: int) -> None:
        """A disruption was injected (``subject`` = agent/component/edge index)."""
        self._log(EV_DISRUPTION, tick, kind, subject)
        from ..obs import emit_event, get_registry

        get_registry().counter(
            "repro_disruptions_total", "Disruptions injected by kind", kind=kind
        ).inc()
        emit_event(
            "disruption.onset",
            "sim",
            level="warning",
            message=f"{kind} struck subject {subject}",
            disruption=kind,
            subject=subject,
            tick=tick,
        )

    def record_recovery(self, tick: int, kind: str, subject: int, latency: int = 0) -> None:
        """A recovery action resolved a disruption after ``latency`` ticks."""
        self._log(EV_RECOVERY, tick, kind, subject, latency)
        from ..obs import emit_event, get_registry

        get_registry().counter(
            "repro_recoveries_total", "Disruption recoveries by kind", kind=kind
        ).inc()
        emit_event(
            "disruption.recovered",
            "sim",
            message=f"{kind} on subject {subject} recovered after {latency} tick(s)",
            disruption=kind,
            subject=subject,
            tick=tick,
            latency=latency,
        )

    def transitions_into(self, component: ComponentId, period: int) -> int:
        """Agents that entered ``component`` during one complete period (live query)."""
        total = 0
        for (_, dst, _), counts in self._transitions.items():
            if dst == component and 0 <= period < len(counts):
                total += int(counts[period])
        return total

    def record_queue_length(self, tick: int, component: ComponentId, length: int) -> None:
        samples = self._queues.get(component)
        if samples is None:
            samples = np.zeros(self.ticks, dtype=np.int64)
            self._queues[component] = samples
        if 0 <= tick < self.ticks:
            samples[tick] = length

    # -- freezing -----------------------------------------------------------------
    def build(
        self,
        metadata: Optional[Dict[str, float]] = None,
        agent_paths: Optional[List[Tuple[int, ...]]] = None,
        resilience=None,
    ) -> SimulationTrace:
        return SimulationTrace(
            ticks=self.ticks,
            num_agents=self.num_agents,
            cycle_time=self.cycle_time,
            seed=self.seed,
            periods=self.periods,
            visits=self.visits,
            transitions=dict(self._transitions),
            pickups=dict(self._pickups),
            handoffs=dict(self._handoffs),
            served=dict(self._served),
            queue_samples=dict(self._queues),
            order_latencies=list(self.order_latencies),
            orders_created=self.orders_created,
            orders_served=self.orders_served,
            units_picked=self.units_picked,
            units_preloaded=self.units_preloaded,
            units_handed_off=self.units_handed_off,
            units_served=self.units_served,
            stockouts=self.stockouts,
            events=self.events,
            agent_paths=None if agent_paths is None else list(agent_paths),
            resilience=resilience,
            metadata=dict(metadata or {}),
        )
