"""Run orchestration: one call from a realized plan to a :class:`SimulationReport`.

:func:`simulate_plan` builds the full process graph — order stream → order
book, agent executors → shelf/station processes, telemetry sampler, runtime
contract monitor — on one seeded engine, runs it for the plan's horizon, and
condenses the outcome.  :func:`simulate_solution` is the pipeline-level entry
point that pulls everything it needs out of a
:class:`~repro.core.pipeline.WSPSolution`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.flow_synthesis import AgentFlowSet
from ..obs import span, span_to_dict
from ..traffic.system import TrafficSystem
from ..warehouse.plan import Plan
from ..warehouse.workload import Workload
from .agents import PlanExecutor
from .disruptions import (
    DisruptionConfig,
    DisruptionProcess,
    ResilienceReport,
    ResilientPlanExecutor,
    nominal_deliveries_by,
)
from .engine import PRIORITY_TELEMETRY, SimulationEngine
from .monitors import ContractMonitor, MonitorReport, monitor_from_synthesis
from .routing import RoutingConfig, RoutingReport, route_plan
from .stations import (
    ServiceTimeModel,
    build_shelf_processes,
    build_station_processes,
)
from .telemetry import SimulationTrace, TraceRecorder
from .workload_gen import DeterministicOrderStream, OrderBook, PoissonOrderStream


class SimulationSetupError(ValueError):
    """Raised when a simulation is configured inconsistently."""


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one digital-twin run.

    The default configuration is the *deterministic baseline*: instantaneous
    station service and all orders present at tick 0 — the run then reproduces
    the plan's own delivery profile exactly, which is what the acceptance
    comparison against the synthesized flow value uses.
    """

    seed: int = 0
    #: Station packing-time distribution (per unit).
    service_time: ServiceTimeModel = field(
        default_factory=lambda: ServiceTimeModel.deterministic(0)
    )
    #: Servers per station-queue component; ``None`` = one per station vertex.
    servers_per_station: Optional[int] = None
    #: Poisson order arrivals at this rate (orders/tick); ``None`` = all
    #: orders at tick 0 (deterministic workload semantics).
    arrival_rate: Optional[float] = None
    #: Run the runtime contract monitor (live + post-hoc).
    monitor_contracts: bool = True
    #: Contract-monitor slack (units per window); ``None`` = auto.
    monitor_slack_units: Optional[float] = None
    #: Keep the full ordered event log (the determinism witness).
    record_events: bool = True
    #: Sample station queue lengths every tick.
    sample_queues: bool = True
    #: Stop after this many ticks (``None`` = the executed plan's horizon).
    max_ticks: Optional[int] = None
    #: Grid-routed execution (``None`` = abstract plan replay); see
    #: :class:`~repro.sim.routing.RoutingConfig`.
    routing: Optional[RoutingConfig] = None
    #: Stochastic failure injection + online recovery (``None`` or an
    #: all-zero-rate config = nominal execution); see
    #: :class:`~repro.sim.disruptions.DisruptionConfig`.
    disruptions: Optional[DisruptionConfig] = None

    @property
    def disruptions_active(self) -> bool:
        """True when the run takes the resilient (failure-injected) path."""
        return self.disruptions is not None and self.disruptions.is_active

    def describe(self) -> str:
        arrivals = (
            "all-at-t0" if self.arrival_rate is None else f"poisson({self.arrival_rate:g}/tick)"
        )
        routing = (
            "abstract"
            if self.routing is None or not self.routing.is_grid_routed
            else self.routing.describe()
        )
        disruptions = (
            self.disruptions.describe() if self.disruptions_active else "none"
        )
        return (
            f"seed={self.seed}, service={self.service_time.describe()}, "
            f"arrivals={arrivals}, routing={routing}, disruptions={disruptions}"
        )


@dataclass
class SimulationReport:
    """Everything one simulation run produced."""

    trace: SimulationTrace
    config: SimulationConfig
    monitor: Optional[MonitorReport]
    num_agents: int
    ticks: int
    #: Units/tick promised by the synthesized flow set (deliveries_per_period / tc).
    synthesized_throughput: float
    #: Tick horizon of the *abstract* plan the promise was made over.  When a
    #: run is cut short (``max_ticks``, a stalled router), ``ticks`` shrinks
    #: but the promise basis does not — ratios are normalized over
    #: ``max(ticks, plan_ticks)`` so a truncated run can never look better
    #: than a complete one.  0 (legacy constructions) falls back to ``ticks``.
    plan_ticks: int = 0
    #: Grid-routing telemetry (``None`` for abstract plan replay).
    routing: Optional[RoutingReport] = None
    #: The motion that actually happened under disruptions, as a
    #: validator-checkable plan (``None`` for nominal runs, whose motion is
    #: the executed plan itself).
    realized_plan: Optional[Plan] = None
    #: Wall-clock cost of the run (reporting only — never used by the sim).
    seconds: float = 0.0

    # -- headline numbers ---------------------------------------------------------
    @property
    def realized_throughput(self) -> float:
        return self.trace.realized_throughput()

    @property
    def truncated(self) -> bool:
        """True when the run covered fewer ticks than the plan promised, or
        the router gave up before serving every waypoint."""
        if self.plan_ticks and self.ticks < self.plan_ticks:
            return True
        return self.routing is not None and self.routing.truncated

    @property
    def normalized_throughput(self) -> float:
        """Units served per tick over the *promise* basis.

        ``realized_throughput`` divides by the ticks the run actually covered,
        which overstates the rate of a truncated run (serving 30 of 40 units
        in the first 170 of 400 promised ticks is not a 2.4x overdelivery).
        Normalizing over ``max(ticks, plan_ticks)`` makes the rate comparable
        with the synthesized promise regardless of where the run stopped.
        """
        basis = max(self.ticks, self.plan_ticks) - 1
        return self.units_served / max(1, basis)

    @property
    def throughput_ratio(self) -> float:
        """Normalized realized / synthesized throughput (1.0 = the twin
        matches the promise).  Bounded by ~1 + slack: a truncated run is
        measured against the full promised horizon, never its shorter one."""
        if self.synthesized_throughput <= 0:
            return 0.0
        return self.normalized_throughput / self.synthesized_throughput

    @property
    def units_served(self) -> int:
        return self.trace.units_served

    @property
    def resilience(self) -> Optional[ResilienceReport]:
        """Resilience telemetry of a disrupted run (``None`` when nominal)."""
        return self.trace.resilience

    @property
    def throughput_retention(self) -> float:
        """Served units over the nominal delivery count (1.0 when nominal)."""
        if self.trace.resilience is None:
            return 1.0
        return self.trace.resilience.throughput_retention

    @property
    def contracts_ok(self) -> bool:
        return self.monitor.ok if self.monitor is not None else True

    @property
    def num_violations(self) -> int:
        return self.monitor.num_violations if self.monitor is not None else 0

    def summary(self) -> str:
        lines = [
            f"simulation: {self.ticks} ticks, {self.num_agents} agents "
            f"({self.config.describe()})",
            f"  units served:        {self.units_served} "
            f"(handed off {self.trace.units_handed_off}, picked "
            f"{self.trace.units_picked}+{self.trace.units_preloaded} preloaded, "
            f"backlog {self.trace.station_backlog})",
            f"  realized throughput: {self.realized_throughput:.4f} units/tick",
            f"  synthesized flow:    {self.synthesized_throughput:.4f} units/tick "
            f"(ratio {self.throughput_ratio:.3f})",
        ]
        if self.truncated:
            lines.append(
                f"  TRUNCATED:           {self.ticks}/{max(self.ticks, self.plan_ticks)} "
                f"promised ticks simulated; ratio normalized over the plan basis"
            )
        lines += [
            f"  orders:              {self.trace.orders_served}/{self.trace.orders_created} "
            f"fulfilled, {self.trace.orders_pending} pending",
        ]
        latency = self.trace.mean_order_latency()
        if latency is not None:
            lines.append(
                f"  order latency:       mean {latency:.1f}, "
                f"p95 {self.trace.p95_order_latency():.1f} ticks"
            )
        if self.trace.queue_samples:
            lines.append(
                f"  station queues:      mean {self.trace.mean_queue_length():.2f}, "
                f"max {self.trace.max_queue_length()}"
            )
        if self.trace.stockouts:
            lines.append(f"  stockouts:           {self.trace.stockouts}")
        if self.routing is not None:
            lines.append(f"  {self.routing.summary()}")
        if self.trace.resilience is not None:
            lines.append(f"  {self.trace.resilience.summary()}")
        if self.monitor is not None:
            lines.append(f"  {self.monitor.summary()}")
            for violation in self.monitor.violations[:10]:
                lines.append(f"    {violation}")
        return "\n".join(lines)


def simulate_plan(
    plan: Plan,
    system: TrafficSystem,
    flow_set: Optional[AgentFlowSet] = None,
    workload: Optional[Workload] = None,
    synthesis=None,
    config: Optional[SimulationConfig] = None,
) -> SimulationReport:
    """Execute a realized plan through the discrete-event engine.

    ``flow_set`` provides the cycle time and the synthesized throughput to
    compare against (falling back to the plan's metadata); ``synthesis`` (a
    :class:`~repro.core.flow_synthesis.FlowSynthesisResult`) enables contract
    monitoring; ``workload`` drives the order stream and the end-to-end
    service check.
    """
    config = config or SimulationConfig()
    with span(
        "sim.simulate", seed=config.seed, sim_config=config.describe()
    ) as sim_span:
        report = _simulate_traced(
            plan, system, flow_set, workload, synthesis, config, sim_span
        )
    if sim_span.enabled:
        # Attach the run's own span tree to the trace; serialization only
        # emits it when present, so untraced runs keep the frozen schema.
        report.trace.obs = {
            "schema": "obs-trace",
            "version": 1,
            "spans": [span_to_dict(sim_span)],
        }
    return report


def _simulate_traced(
    plan: Plan,
    system: TrafficSystem,
    flow_set: Optional[AgentFlowSet],
    workload: Optional[Workload],
    synthesis,
    config: SimulationConfig,
    sim_span,
) -> SimulationReport:
    start = time.perf_counter()

    if flow_set is not None:
        cycle_time = flow_set.cycle_time
        synthesized = flow_set.deliveries_per_period() / max(1, cycle_time)
    else:
        cycle_time = int(plan.metadata.get("cycle_time", 0)) or max(1, plan.horizon - 1)
        synthesized = 0.0

    # Grid-routed mode: replace the plan's abstract motion with MAPF paths
    # before anything else sees it — executors, monitors and telemetry then
    # operate on the congestion-subjected motion.
    routing_report: Optional[RoutingReport] = None
    exec_plan = plan
    if config.routing is not None and config.routing.is_grid_routed:
        with span("sim.route", router=config.routing.describe()) as route_span:
            exec_plan, routing_report = route_plan(plan, config.routing, system=system)
            route_span.add("replans", routing_report.replans)
            route_span.add("expansions", routing_report.expansions)
            route_span.add("conflicts", routing_report.conflicts)

    ticks = (
        exec_plan.horizon
        if config.max_ticks is None
        else min(config.max_ticks, exec_plan.horizon)
    )
    if ticks < 2:
        raise SimulationSetupError(f"a plan with {ticks} tick(s) has nothing to simulate")

    setup_timer = sim_span.timer("setup")
    setup_timer.__enter__()
    engine = SimulationEngine(config.seed)
    recorder = TraceRecorder(
        num_vertices=exec_plan.warehouse.floorplan.num_vertices,
        num_agents=exec_plan.num_agents,
        cycle_time=cycle_time,
        ticks=ticks,
        seed=config.seed,
        record_events=config.record_events,
    )

    book = OrderBook(recorder)
    if workload is not None:
        if config.arrival_rate is None:
            DeterministicOrderStream(workload).bind(engine, book)
        else:
            PoissonOrderStream(
                config.arrival_rate, workload=workload, until=ticks - 1
            ).bind(engine, book)

    stations = build_station_processes(
        engine,
        system,
        recorder,
        service_model=config.service_time,
        servers_per_station=config.servers_per_station,
        order_book=book if workload is not None else None,
    )
    shelves = build_shelf_processes(system, recorder)
    # The resilient (failure-injected) path only engages when a disruption can
    # actually occur; otherwise the verbatim replay runs untouched, keeping
    # zero-disruption traces byte-identical to the pre-disruption schema.
    resilience: Optional[ResilienceReport] = None
    resilient_executor: Optional[ResilientPlanExecutor] = None
    if config.disruptions_active:
        resilience = ResilienceReport()
        resilient_executor = ResilientPlanExecutor(
            engine,
            exec_plan,
            system,
            recorder,
            stations,
            shelves,
            config.disruptions,
            resilience,
            max_ticks=ticks,
        )
        resilient_executor.start()
        DisruptionProcess(
            engine,
            config.disruptions,
            recorder,
            resilient_executor,
            stations,
            resilience,
            until=ticks - 1,
            book=book if workload is not None else None,
            workload=workload,
        ).start()
    else:
        executor = PlanExecutor(
            engine, exec_plan, system, recorder, stations, shelves, max_ticks=ticks
        )
        executor.start()

    monitor: Optional[ContractMonitor] = None
    if config.monitor_contracts and synthesis is not None:
        monitor = monitor_from_synthesis(
            system, synthesis, slack_units=config.monitor_slack_units
        )
        monitor.attach(engine, recorder, cycle_time)

    if config.sample_queues:

        def sample_queues() -> None:
            now = engine.now
            for component_id, station in stations.items():
                recorder.record_queue_length(now, component_id, station.queue_length)

        engine.every(1, sample_queues, PRIORITY_TELEMETRY, start=0, until=ticks - 1)
    setup_timer.__exit__(None, None, None)

    engine.run(until=ticks - 1)

    finalize_timer = sim_span.timer("finalize")
    finalize_timer.__enter__()
    metadata = {
        "cycle_time": float(cycle_time),
        "synthesized_throughput": float(synthesized),
    }
    agent_paths = None
    if routing_report is not None:
        agent_paths = [
            tuple(int(v) for v in exec_plan.positions[agent, :ticks])
            for agent in range(exec_plan.num_agents)
        ]
        metadata.update(
            {
                "routing_completed": float(routing_report.completed),
                "routing_truncated": float(routing_report.truncated),
                "routing_inflation": float(routing_report.inflation),
                "routing_replans": float(routing_report.replans),
                "routing_conflicts": float(routing_report.conflicts),
                "routing_max_edge_load": float(routing_report.max_edge_load),
            }
        )
    realized_plan: Optional[Plan] = None
    if resilient_executor is not None and resilience is not None:
        realized_plan = resilient_executor.realized_plan()
        # The realized (post-disruption) motion supersedes the committed one.
        agent_paths = [
            tuple(int(v) for v in realized_plan.positions[agent])
            for agent in range(realized_plan.num_agents)
        ]
        resilience.units_served = recorder.units_served
        resilience.nominal_units = nominal_deliveries_by(exec_plan, ticks)
        resilience.dropped_orders = recorder.orders_created - recorder.orders_served
        deadline = config.disruptions.order_deadline if config.disruptions else 0
        if deadline > 0:
            resilience.late_orders = sum(
                1 for latency in recorder.order_latencies if latency > deadline
            )
        if monitor is not None and monitor.live_violations:
            resilience.breach_windows = len(monitor.live_violations)
            resilience.first_breach_tick = min(
                violation.tick
                for violation in monitor.live_violations
                if violation.tick is not None
            )
    trace = recorder.build(
        metadata=metadata, agent_paths=agent_paths, resilience=resilience
    )
    monitor_report: Optional[MonitorReport] = None
    if monitor is not None:
        monitor_report = monitor.evaluate(trace, workload=workload)
    elif workload is not None and config.monitor_contracts:
        # No compiled contracts available — still run the end-to-end check.
        monitor_report = ContractMonitor(system=system).evaluate(trace, workload=workload)
    finalize_timer.__exit__(None, None, None)

    sim_span.set_attr("ticks", ticks)
    sim_span.set_attr("agents", exec_plan.num_agents)
    sim_span.add("units_served", trace.units_served)
    if resilience is not None:
        sim_span.add("disruptions", resilience.num_disruptions)
        sim_span.add("recoveries", resilience.num_recoveries)

    return SimulationReport(
        trace=trace,
        config=config,
        monitor=monitor_report,
        num_agents=exec_plan.num_agents,
        ticks=ticks,
        synthesized_throughput=synthesized,
        plan_ticks=plan.horizon,
        routing=routing_report,
        realized_plan=realized_plan,
        seconds=time.perf_counter() - start,
    )


def simulate_solution(solution, config: Optional[SimulationConfig] = None) -> SimulationReport:
    """Simulate the realized plan of a successful :class:`WSPSolution`."""
    plan = getattr(solution, "plan", None)
    if plan is None:
        raise SimulationSetupError(
            "the solution has no realized plan to simulate "
            f"({getattr(solution, 'message', '') or 'solve failed'})"
        )
    return simulate_plan(
        plan=plan,
        system=solution.traffic_system,
        flow_set=solution.flow_set,
        workload=solution.instance.workload,
        synthesis=solution.synthesis,
        config=config,
    )
