"""repro.sim — discrete-event execution engine (digital twin) for realized plans.

The static pipeline proves a plan *exists*; this package *executes* it over
simulated time and observes whether the promises hold dynamically:

* :mod:`repro.sim.engine`       — deterministic, seedable event-heap engine;
* :mod:`repro.sim.agents`       — executors stepping realized plans tick-by-tick;
* :mod:`repro.sim.routing`      — grid-routed execution: agent motion re-planned
  on the floorplan by a pluggable MAPF router (prioritized/CBS/ECBS/lifelong)
  with reservation-based collision avoidance and congestion telemetry;
* :mod:`repro.sim.disruptions`  — stochastic failure injection (breakdowns,
  slowdowns, station outages, blocked aisles, demand surges) with online
  recovery (leg reassignment, windowed re-routing, station failover) and
  resilience telemetry;
* :mod:`repro.sim.stations`     — station/shelf service processes with queues
  and configurable service-time distributions;
* :mod:`repro.sim.workload_gen` — deterministic and Poisson order streams with
  product-mix sampling;
* :mod:`repro.sim.telemetry`    — the trace: visits, per-period flows, queue
  lengths, order latencies, event log;
* :mod:`repro.sim.monitors`     — runtime assume-guarantee contract monitoring;
* :mod:`repro.sim.runner`       — one-call orchestration into a
  :class:`SimulationReport`.

Typical use, given a solved instance::

    report = solver.simulate(solution)            # or simulate_solution(solution)
    print(report.summary())
    assert report.contracts_ok
"""

from .agents import AgentExecutor, ExecutionError, PlanExecutor
from .disruptions import (
    DISRUPTION_KINDS,
    DisruptionConfig,
    DisruptionError,
    DisruptionProcess,
    ResilienceReport,
    ResilientPlanExecutor,
    ScriptedDisruption,
    canonical_edges,
    nominal_deliveries_by,
    parse_disruptions,
    severity_ladder,
)
from .engine import (
    PRIORITY_AGENTS,
    PRIORITY_ARRIVALS,
    PRIORITY_DISRUPTIONS,
    PRIORITY_MONITORS,
    PRIORITY_STATIONS,
    PRIORITY_TELEMETRY,
    Event,
    SimulationEngine,
    SimulationError,
)
from .monitors import (
    ContractMonitor,
    MonitorError,
    MonitorReport,
    MonitorViolation,
    monitor_from_synthesis,
)
from .routing import (
    DEFAULT_LIFELONG_WINDOW,
    ROUTERS,
    RoutingConfig,
    RoutingError,
    RoutingReport,
    edge_load_by_vertex,
    edge_traversal_counts,
    free_flow_cost,
    plan_goal_specs,
    plan_waypoints,
    route_plan,
)
from .runner import (
    SimulationConfig,
    SimulationReport,
    SimulationSetupError,
    simulate_plan,
    simulate_solution,
)
from .stations import (
    ServiceModelError,
    ServiceTimeModel,
    ShelfProcess,
    StationProcess,
    build_shelf_processes,
    build_station_processes,
)
from .telemetry import SimulationTrace, TraceRecorder
from .workload_gen import (
    DeterministicOrderStream,
    Order,
    OrderBook,
    OrderStreamError,
    PoissonOrderStream,
    product_mix_from_workload,
)

__all__ = [
    "AgentExecutor",
    "ContractMonitor",
    "DEFAULT_LIFELONG_WINDOW",
    "DISRUPTION_KINDS",
    "DeterministicOrderStream",
    "DisruptionConfig",
    "DisruptionError",
    "DisruptionProcess",
    "Event",
    "ExecutionError",
    "ROUTERS",
    "ResilienceReport",
    "ResilientPlanExecutor",
    "ScriptedDisruption",
    "RoutingConfig",
    "RoutingError",
    "RoutingReport",
    "MonitorError",
    "MonitorReport",
    "MonitorViolation",
    "Order",
    "OrderBook",
    "OrderStreamError",
    "PlanExecutor",
    "PoissonOrderStream",
    "PRIORITY_AGENTS",
    "PRIORITY_ARRIVALS",
    "PRIORITY_DISRUPTIONS",
    "PRIORITY_MONITORS",
    "PRIORITY_STATIONS",
    "PRIORITY_TELEMETRY",
    "ServiceModelError",
    "ServiceTimeModel",
    "ShelfProcess",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationError",
    "SimulationReport",
    "SimulationSetupError",
    "SimulationTrace",
    "StationProcess",
    "TraceRecorder",
    "build_shelf_processes",
    "build_station_processes",
    "canonical_edges",
    "edge_load_by_vertex",
    "edge_traversal_counts",
    "free_flow_cost",
    "monitor_from_synthesis",
    "nominal_deliveries_by",
    "parse_disruptions",
    "plan_goal_specs",
    "plan_waypoints",
    "product_mix_from_workload",
    "route_plan",
    "severity_ladder",
    "simulate_plan",
    "simulate_solution",
]
