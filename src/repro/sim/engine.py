"""A deterministic, seedable discrete-event simulation engine.

The engine is the substrate of the digital twin: a binary-heap event queue, an
integer clock counted in plan timesteps ("ticks"), and a seeded random
generator shared by every stochastic process of a run.  There is **no
wall-clock dependence anywhere** — two runs with the same seed and the same
processes execute the exact same event sequence, which is what makes simulated
traces reproducible, diffable and usable as regression artifacts.

Events scheduled for the same tick are ordered by an explicit priority and
then by insertion order, so intra-tick phases are well defined.  The module
exports the priority bands the warehouse processes use:

* :data:`PRIORITY_ARRIVALS` — order arrivals (environment acts first);
* :data:`PRIORITY_DISRUPTIONS` — failure injection and repair (the environment
  degrades the system before agents react to it);
* :data:`PRIORITY_AGENTS` — agent executors stepping the realized plan;
* :data:`PRIORITY_STATIONS` — station service completions;
* :data:`PRIORITY_MONITORS` — runtime contract monitors (observe the settled state);
* :data:`PRIORITY_TELEMETRY` — trace sampling (always sees the final state of a tick).

A same-tick event can never be scheduled into a phase that has already run:
when a callback executing in band ``p`` schedules an event at the current tick
with a priority below ``p``, the event's priority is lifted to ``p``.  Without
the lift the heap would pop the event *after* the scheduling callback even
though its band already completed, silently interleaving phases — the exact
tie-breaking bug class the disruption layer surfaced (a repair firing in the
disruption band scheduling same-tick agent work must keep (tick, priority,
sequence) pops monotone within the tick).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs import span

#: Intra-tick phase ordering (lower runs first).
PRIORITY_ARRIVALS = 0
PRIORITY_DISRUPTIONS = 5
PRIORITY_AGENTS = 10
PRIORITY_STATIONS = 20
PRIORITY_MONITORS = 30
PRIORITY_TELEMETRY = 40

#: Band names for observability (span counters key on these).
PRIORITY_NAMES: Dict[int, str] = {
    PRIORITY_ARRIVALS: "arrivals",
    PRIORITY_DISRUPTIONS: "disruptions",
    PRIORITY_AGENTS: "agents",
    PRIORITY_STATIONS: "stations",
    PRIORITY_MONITORS: "monitors",
    PRIORITY_TELEMETRY: "telemetry",
}


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted event queue."""


@dataclass(order=True)
class Event:
    """One scheduled callback; the comparison key is (time, priority, seq)."""

    time: int
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine skips it when it fires."""
        self.cancelled = True


class SimulationEngine:
    """Event heap + integer clock + seeded RNG.

    Parameters
    ----------
    seed:
        Seed of the run's random generator.  Every stochastic decision of
        every process must come from :attr:`rng` — that single rule is what
        makes a run reproducible from its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rng: np.random.Generator = np.random.default_rng(self.seed)
        self._heap: List[Event] = []
        self._now = 0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._current_priority: Optional[int] = None
        self.events_processed = 0

    # -- clock ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The current simulation tick."""
        return self._now

    # -- scheduling --------------------------------------------------------------
    def schedule_at(
        self, time: int, callback: Callable[[], None], priority: int = PRIORITY_AGENTS
    ) -> Event:
        """Schedule ``callback`` at an absolute tick (>= now).

        A same-tick event cannot re-enter a phase the clock has already passed:
        its priority is lifted to the currently executing event's band, keeping
        intra-tick pops monotone in (priority, sequence).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time}, the clock is already at t={self._now}"
            )
        priority = int(priority)
        if (
            time == self._now
            and self._current_priority is not None
            and priority < self._current_priority
        ):
            priority = self._current_priority
        event = Event(time=int(time), priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: int, callback: Callable[[], None], priority: int = PRIORITY_AGENTS
    ) -> Event:
        """Schedule ``callback`` ``delay`` ticks from now (0 = later this tick)."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def every(
        self,
        interval: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_AGENTS,
        start: int = 0,
        until: Optional[int] = None,
    ) -> None:
        """Run ``callback`` every ``interval`` ticks from ``start`` (inclusive)
        up to ``until`` (inclusive; ``None`` = forever while events remain)."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        first = max(self._now, start)
        if until is not None and first > until:
            return

        def fire() -> None:
            callback()
            next_time = self._now + interval
            if until is None or next_time <= until:
                self.schedule_at(next_time, fire, priority)

        self.schedule_at(first, fire, priority)

    # -- execution ----------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Process events in order until the heap drains or the clock passes ``until``.

        Returns the number of events processed by this call.  ``until`` is
        inclusive: events scheduled exactly at ``until`` still fire.
        """
        if self._running:
            raise SimulationError("the engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        with span("sim.engine.run", seed=self.seed) as sp:
            # Per-event work stays untraced (the loop is the hot path); when
            # tracing is on we tally events per priority band locally and
            # attach the totals once at the end.
            band_counts: Optional[Dict[int, int]] = {} if sp.enabled else None
            try:
                while self._heap and not self._stopped:
                    event = self._heap[0]
                    if until is not None and event.time > until:
                        break
                    heapq.heappop(self._heap)
                    if event.cancelled:
                        continue
                    self._now = event.time
                    self._current_priority = event.priority
                    try:
                        event.callback()
                    finally:
                        self._current_priority = None
                    processed += 1
                    self.events_processed += 1
                    if band_counts is not None:
                        band_counts[event.priority] = (
                            band_counts.get(event.priority, 0) + 1
                        )
            finally:
                self._running = False
                if band_counts is not None:
                    sp.add("events_processed", processed)
                    sp.set_attr("final_tick", self._now)
                    for priority in sorted(band_counts):
                        name = PRIORITY_NAMES.get(priority, str(priority))
                        sp.add(f"events.{name}", band_counts[priority])
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return processed

    def stop(self) -> None:
        """Stop the run after the current callback returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationEngine(t={self._now}, seed={self.seed}, "
            f"{self.pending_events} pending, {self.events_processed} processed)"
        )
