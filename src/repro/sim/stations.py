"""Station and shelf service processes with queues and service-time models.

The realized plan encodes agent *motion* exactly, but a physical warehouse has
a second, slower side: once an agent hands a unit over at a picking station,
a human (or packing machine) still has to process it.  :class:`StationProcess`
models that downstream side as a FIFO queue with ``servers`` parallel servers
and a configurable :class:`ServiceTimeModel`; a unit only counts as *served*
(and can fulfill a customer order) when its service completes.

With the default instantaneous model (``deterministic(0)``) a hand-off is
served in the same tick, so the simulated service trace coincides with the
plan's drop-off events — that is the deterministic digital-twin baseline the
acceptance checks compare against the synthesized flow value.  Slower or
stochastic models back the queue up, which is how under-provisioned stations
are detected by the contract monitor.

Shelf-side, :class:`ShelfProcess` tracks per-row inventory depletion: every
pickup consumes one stocked unit, and picking from an exhausted row is
recorded as a stockout.  Shelf picking takes no extra simulated time — the
agent's traversal of the shelving row (already part of the plan) *is* the
service time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.products import ProductId
from .engine import PRIORITY_STATIONS, SimulationEngine
from .telemetry import TraceRecorder


class ServiceModelError(ValueError):
    """Raised for invalid service-time specifications."""


@dataclass(frozen=True)
class ServiceTimeModel:
    """A distribution of integer service times (in ticks).

    Use the factory methods; ``kind`` is one of ``deterministic`` (constant),
    ``uniform`` (integer-uniform on [lo, hi]) or ``geometric`` (memoryless
    with the given mean, the discrete analogue of exponential service).
    """

    kind: str
    params: Tuple[float, ...]

    @staticmethod
    def deterministic(ticks: int = 0) -> "ServiceTimeModel":
        if ticks < 0:
            raise ServiceModelError("service time must be non-negative")
        return ServiceTimeModel("deterministic", (float(ticks),))

    @staticmethod
    def uniform(lo: int, hi: int) -> "ServiceTimeModel":
        if lo < 0 or hi < lo:
            raise ServiceModelError(f"invalid uniform service range [{lo}, {hi}]")
        return ServiceTimeModel("uniform", (float(lo), float(hi)))

    @staticmethod
    def geometric(mean: float) -> "ServiceTimeModel":
        # Draws are >= 1 tick, so a mean below 1 is unrealizable (it would
        # silently clamp to a constant 1 and misreport the configured load).
        if mean < 1:
            raise ServiceModelError(
                f"geometric service mean must be at least 1 tick, got {mean:g}"
            )
        return ServiceTimeModel("geometric", (float(mean),))

    @property
    def mean(self) -> float:
        if self.kind == "uniform":
            return (self.params[0] + self.params[1]) / 2.0
        return self.params[0]

    @property
    def is_instant(self) -> bool:
        return self.kind == "deterministic" and self.params[0] == 0.0

    def sample(self, rng: np.random.Generator) -> int:
        if self.kind == "deterministic":
            return int(self.params[0])
        if self.kind == "uniform":
            lo, hi = int(self.params[0]), int(self.params[1])
            return int(rng.integers(lo, hi + 1))
        # geometric on {1, 2, ...}: mean m gives success probability 1/m.
        return int(rng.geometric(1.0 / self.params[0]))

    def describe(self) -> str:
        if self.kind == "deterministic":
            return f"deterministic({int(self.params[0])})"
        if self.kind == "uniform":
            return f"uniform({int(self.params[0])}, {int(self.params[1])})"
        return f"geometric(mean={self.params[0]:g})"


class StationProcess:
    """One station-queue component's packing process: FIFO queue + servers."""

    def __init__(
        self,
        engine: SimulationEngine,
        component_id: ComponentId,
        recorder: TraceRecorder,
        service_model: ServiceTimeModel,
        servers: int = 1,
        order_book=None,
    ) -> None:
        if servers <= 0:
            raise ServiceModelError("a station needs at least one server")
        self.engine = engine
        self.component_id = component_id
        self.recorder = recorder
        self.service_model = service_model
        self.servers = servers
        self.order_book = order_book
        self._waiting: Deque[ProductId] = deque()
        self._in_service = 0
        self.units_received = 0
        self.units_served = 0
        #: Outage switch (see :mod:`repro.sim.disruptions`): while offline the
        #: station accepts hand-offs but starts no new services; in-flight
        #: services run to completion (a packer finishes the unit in hand).
        self.online = True

    # -- queue state --------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Units handed over but not yet fully served (waiting + in service)."""
        return len(self._waiting) + self._in_service

    @property
    def backlog(self) -> int:
        return self.queue_length

    # -- events -------------------------------------------------------------------
    def handoff(self, product: ProductId) -> None:
        """An agent dropped ``product`` at this station's vertex this tick."""
        self.units_received += 1
        self.recorder.record_handoff(self.engine.now, self.component_id, product)
        self._waiting.append(product)
        self._try_start()

    def go_offline(self) -> None:
        """Station outage begins: stop starting new services."""
        self.online = False

    def go_online(self) -> None:
        """Outage over: resume draining the queue this tick."""
        self.online = True
        self._try_start()

    def _try_start(self) -> None:
        while self.online and self._waiting and self._in_service < self.servers:
            product = self._waiting.popleft()
            self._in_service += 1
            delay = self.service_model.sample(self.engine.rng)
            self.engine.schedule(
                delay, lambda p=product: self._complete(p), PRIORITY_STATIONS
            )

    def _complete(self, product: ProductId) -> None:
        self._in_service -= 1
        self.units_served += 1
        self.recorder.record_served(self.engine.now, self.component_id, product)
        if self.order_book is not None:
            self.order_book.unit_served(product, self.engine.now)
        self._try_start()


class ShelfProcess:
    """Inventory tracking of one shelving-row component."""

    def __init__(
        self,
        component_id: ComponentId,
        recorder: TraceRecorder,
        stock: Dict[ProductId, int],
    ) -> None:
        self.component_id = component_id
        self.recorder = recorder
        self.stock = dict(stock)
        self.units_picked = 0
        self.stockouts = 0

    def pick(self, product: ProductId, now: int) -> bool:
        """Consume one unit of ``product``; False (and a stockout) when exhausted."""
        remaining = self.stock.get(product, 0)
        if remaining <= 0:
            self.stockouts += 1
            return False
        self.stock[product] = remaining - 1
        self.units_picked += 1
        self.recorder.record_pickup(now, self.component_id, product)
        return True

    @property
    def units_remaining(self) -> int:
        return sum(self.stock.values())


def build_station_processes(
    engine: SimulationEngine,
    system: TrafficSystem,
    recorder: TraceRecorder,
    service_model: ServiceTimeModel,
    servers_per_station: Optional[int] = None,
    order_book=None,
) -> Dict[ComponentId, StationProcess]:
    """One :class:`StationProcess` per station-queue component.

    ``servers_per_station=None`` sizes each station by its number of station
    vertices (every physical picking station is one server).
    """
    processes: Dict[ComponentId, StationProcess] = {}
    for component in system.station_queues():
        if servers_per_station is None:
            servers = max(1, len(system.station_vertices_in(component.index)))
        else:
            servers = servers_per_station
        processes[component.index] = StationProcess(
            engine=engine,
            component_id=component.index,
            recorder=recorder,
            service_model=service_model,
            servers=servers,
            order_book=order_book,
        )
    return processes


def build_shelf_processes(
    system: TrafficSystem, recorder: TraceRecorder
) -> Dict[ComponentId, ShelfProcess]:
    """One :class:`ShelfProcess` per shelving row, seeded from the live stock."""
    processes: Dict[ComponentId, ShelfProcess] = {}
    for component in system.shelving_rows():
        stock = {
            product: system.units_at(component.index, product)
            for product in system.warehouse.catalog.product_ids
            if system.units_at(component.index, product) > 0
        }
        processes[component.index] = ShelfProcess(component.index, recorder, stock)
    return processes
