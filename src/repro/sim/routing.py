"""Grid-routed execution: replace a plan's abstract motion with MAPF paths.

The abstract digital twin replays a realized plan's (π, φ) matrices verbatim —
agent motion is whatever the co-design realization committed to, and the MAPF
stack is never exercised.  This module closes that gap: it re-derives each
agent's *waypoint sequence* (every vertex where the carried product changes —
the pickups and drop-offs the plan promised) and hands those sequences to a
pluggable MAPF router over the physical :class:`~repro.warehouse.floorplan.
FloorplanGraph`.  The router's collision-free space-time paths become a new
:class:`~repro.warehouse.plan.Plan` the existing executors, station processes
and contract monitors run unchanged — but now the motion is subject to real
congestion: agents queue in aisles, make way for each other, and inflate their
travel time beyond the free-flow optimum.

Routers (:data:`ROUTERS`):

* ``abstract``     — no routing; the plan replays as-is (the PR-1 behaviour);
* ``prioritized``  — cooperative A* per episode (fast, incomplete);
* ``cbs``          — optimal Conflict-Based Search per episode;
* ``ecbs``         — bounded-suboptimal ECBS(w) per episode;
* ``lifelong``     — ECBS with *windowed replanning*: only the first
  ``window`` steps of each episode are committed before replanning
  (RHCR-style rolling horizon; see :class:`~repro.mapf.mapd.IteratedPlanner`).

All grid routers drive the :class:`~repro.mapf.mapd.IteratedPlanner`;
reservation-based collision avoidance (prioritized) or constraint-tree search
(CBS/ECBS) guarantees the stitched paths are vertex- and edge-collision-free.
The router also produces the congestion telemetry the analysis layer reports:
per-edge traversal counts (the edge heatmap), replan episodes, search
expansions, and the *path-length inflation* — routed cost over the free-flow
cost (the sum of single-agent BFS distances along each waypoint chain), the
standard congestion indicator of warehouse digital twins.

By default routed runs are *paced to the plan's timeline*: each waypoint
inherits the tick at which the abstract plan performed the load change as a
release tick, and the lifelong planner dispatches agents so no pickup or
drop-off happens earlier than promised.  Grid motion is typically 2-3x
faster than the abstract plan's (the co-design plan budgets slack per cycle),
and an unpaced routed run compresses a 400-tick plan into ~150 ticks —
inflating every per-period flow rate past what the AG contracts promised and
failing monitors that the abstract replay passes.  Pacing keeps the routed
run on the promised timeline (the routed horizon is also padded to the
plan's), so contract monitoring carries over unchanged; set
``RoutingConfig(pace_to_plan=False)`` for the raw as-fast-as-possible regime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mapf.mapd import IteratedPlanner, IteratedPlannerOptions, LifelongTask
from ..mapf.problem import find_conflicts
from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.plan import Plan
from ..warehouse.products import ProductId

#: Execution modes: ``abstract`` replays the plan, the rest route on the grid.
ROUTERS = ("abstract", "prioritized", "cbs", "ecbs", "lifelong")

#: Per-episode MAPF engine used for each grid router.
ROUTER_ENGINES = {
    "prioritized": "prioritized",
    "cbs": "cbs",
    "ecbs": "ecbs",
    "lifelong": "ecbs",
}

#: Default commit window of the ``lifelong`` router (ticks per replan).
DEFAULT_LIFELONG_WINDOW = 8


class RoutingError(ValueError):
    """Raised for invalid routing configurations or unroutable plans."""


@dataclass(frozen=True)
class RoutingConfig:
    """How (and whether) agent motion is routed on the grid.

    ``window=0`` means "replan only at goal boundaries" for the one-shot
    routers; the ``lifelong`` router, whose point is windowed replanning,
    falls back to :data:`DEFAULT_LIFELONG_WINDOW` when no window is given.
    Smaller windows track the evolving goal set more closely but solve many
    more episodes; larger windows amortize search at the cost of staler
    commitments.
    """

    router: str = "abstract"
    #: Steps committed per replanning episode (0 = full episodes).
    window: int = 0
    #: ECBS suboptimality factor (ignored by prioritized/cbs engines).
    suboptimality: float = 1.5
    #: Episode cap of the iterated planner (guards livelock).
    max_episodes: int = 10_000
    #: Per-episode high-level node budget of CBS/ECBS.
    node_limit: int = 20_000
    #: Wall-clock budget for the whole routing pass (``None`` = unbounded).
    time_limit: Optional[float] = None
    #: Pace waypoint arrivals to the abstract plan's timeline (see module
    #: docstring).  Disable for the raw as-fast-as-possible regime.
    pace_to_plan: bool = True

    def __post_init__(self) -> None:
        if self.router not in ROUTERS:
            raise RoutingError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.window < 0:
            raise RoutingError(f"window must be non-negative, got {self.window}")
        if self.suboptimality < 1.0:
            raise RoutingError(
                f"suboptimality must be at least 1.0, got {self.suboptimality:g}"
            )
        if self.max_episodes < 1:
            raise RoutingError(f"max_episodes must be positive, got {self.max_episodes}")
        if self.node_limit < 1:
            raise RoutingError(f"node_limit must be positive, got {self.node_limit}")

    @property
    def is_grid_routed(self) -> bool:
        return self.router != "abstract"

    @property
    def engine(self) -> str:
        """The per-episode MAPF engine (raises for the abstract mode)."""
        if not self.is_grid_routed:
            raise RoutingError("the abstract mode has no MAPF engine")
        return ROUTER_ENGINES[self.router]

    @property
    def effective_window(self) -> Optional[int]:
        """The commit window actually handed to the iterated planner."""
        if self.window > 0:
            return self.window
        if self.router == "lifelong":
            return DEFAULT_LIFELONG_WINDOW
        return None

    def describe(self) -> str:
        if not self.is_grid_routed:
            return "abstract"
        window = self.effective_window
        detail = f"window={window}" if window is not None else "per-goal episodes"
        return f"{self.router} (engine={self.engine}, {detail})"


@dataclass
class RoutingReport:
    """Everything one grid-routing pass produced, beyond the routed plan."""

    router: str
    engine: str
    window: Optional[int]
    completed: bool
    goals_completed: int
    goals_total: int
    #: Solver episodes — each one is a (re)planning event.
    replans: int
    #: Low-level search node expansions across all episodes.
    expansions: int
    #: Residual vertex/edge conflicts in the routed paths (0 when sound).
    conflicts: int
    #: Sum over agents of ticks until their last completed waypoint (agents
    #: with unfinished goals contribute their whole traversal).  Trailing
    #: rest ticks after an agent's final waypoint are excluded, so the cost
    #: reflects congestion (waits, detours) — not workload imbalance padding.
    routed_cost: int
    #: Sum over agents of the free-flow cost (BFS distance along waypoints).
    free_flow_cost: int
    #: Load changes that could not be replayed onto the routed paths
    #: (degenerate same-tick waypoint corners; 0 on real plans).
    carry_mismatches: int
    #: Undirected per-edge traversal counts: ``{(u, v): crossings}`` (u < v).
    edge_traversals: Dict[Tuple[VertexId, VertexId], int] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    #: Why the lifelong run ended: "completed", or the truncation reason
    #: ("stalled" | "episode_limit" | "time_limit").
    status: str = "completed"
    #: Sum over completed legs of ``arrival - dispatch`` ticks — pure travel
    #: plus congestion waits, excluding release-pacing idle time.  Under
    #: pacing this (not ``routed_cost``, which absorbs planned waiting) is
    #: the congestion signal.
    leg_travel_cost: int = 0

    @property
    def truncated(self) -> bool:
        """True when routing ended before serving every waypoint."""
        return not self.completed

    @property
    def inflation(self) -> float:
        """Routed / free-flow cost (1.0 = congestion-free; 0.0 = undefined)."""
        if self.free_flow_cost <= 0 or not self.completed:
            return 0.0
        return self.routed_cost / self.free_flow_cost

    @property
    def max_edge_load(self) -> int:
        return max(self.edge_traversals.values(), default=0)

    @property
    def mean_edge_load(self) -> float:
        if not self.edge_traversals:
            return 0.0
        return float(np.mean(list(self.edge_traversals.values())))

    def busiest_edges(self, count: int = 5) -> List[Tuple[VertexId, VertexId, int]]:
        """The ``count`` most-traversed edges as ``(u, v, crossings)``."""
        ranked = sorted(
            self.edge_traversals.items(), key=lambda item: (-item[1], item[0])
        )
        return [(u, v, crossings) for (u, v), crossings in ranked[:count]]

    def summary(self) -> str:
        status = "completed" if self.completed else f"TRUNCATED ({self.status})"
        inflation = f"{self.inflation:.3f}" if self.inflation else "n/a"
        return (
            f"routing [{self.router}]: {status}, "
            f"{self.goals_completed}/{self.goals_total} waypoints, "
            f"{self.replans} replans, {self.expansions} expansions, "
            f"inflation {inflation} "
            f"(routed {self.routed_cost} vs free-flow {self.free_flow_cost}), "
            f"max edge load {self.max_edge_load}"
        )


# ---------------------------------------------------------------------------
# waypoint extraction
# ---------------------------------------------------------------------------

def plan_waypoints(plan: Plan, with_ticks: bool = False) -> List[List[Tuple]]:
    """Per agent, the ordered load-change events as ``(vertex, carry_after)``.

    A waypoint is recorded at every vertex where the agent's carried product
    changes (the paper's condition (3): the change at ``t + 1`` is decided at
    the vertex occupied at ``t``).  Unlike
    :func:`~repro.mapf.mapd.goal_sequences_from_plan`, consecutive events at
    the same vertex are *not* collapsed — the carry reconstruction needs every
    individual event.

    With ``with_ticks=True`` each event is ``(vertex, carry_after, tick)``
    where ``tick`` is the decision tick ``t`` — the release tick pacing pins
    the routed arrival to.
    """
    events: List[List[Tuple]] = []
    for agent in range(plan.num_agents):
        carrying = plan.carrying[agent]
        positions = plan.positions[agent]
        agent_events: List[Tuple] = []
        for t in range(plan.horizon - 1):
            if carrying[t + 1] != carrying[t]:
                if with_ticks:
                    agent_events.append((int(positions[t]), int(carrying[t + 1]), t))
                else:
                    agent_events.append((int(positions[t]), int(carrying[t + 1])))
        events.append(agent_events)
    return events


def plan_goal_specs(
    plan: Plan, system=None
) -> List[List[Tuple[VertexId, int, Optional[ProductId], Optional[frozenset]]]]:
    """Per agent, the ordered routing goals: ``(vertex, release, carry, corridor)``.

    Always contains the load-change waypoints (``carry`` = the product carried
    after the change).  When a :class:`~repro.traffic.system.TrafficSystem` is
    given, the plan's *component-entry* vertices are interleaved as breadcrumb
    goals (``carry=None``): the first vertex the plan holds inside each
    component it visits, released at the plan tick of that entry.  Each goal
    then also carries a *corridor* — the union of the vertices of every
    component (plus any unowned cells) the plan traverses on that leg; the
    router confines the leg's motion to it.

    Breadcrumbs pin the routed motion to the plan's component-level circuit
    and corridors keep it there — without them a shortest-path router cuts
    across component boundaries the flow synthesis never promised traffic on
    (e.g. straight backward from a serpentine into its station instead of
    around the one-way loop), and the contract monitor correctly flags the
    unpromised flows.
    """
    if system is None:
        owner = lambda v: None  # noqa: E731 - trivial accessor stub
        comp_vertices: Dict[int, Tuple[VertexId, ...]] = {}
    else:
        owner = system.owner_of
        comp_vertices = {c.index: tuple(c.vertices) for c in system.components}
    specs: List[List[Tuple[VertexId, int, Optional[ProductId], Optional[frozenset]]]] = []
    for agent in range(plan.num_agents):
        carrying = plan.carrying[agent]
        positions = plan.positions[agent]
        out: List[List] = []
        seg_owners: set = set()
        seg_free: set = set()

        def corridor() -> Optional[frozenset]:
            if system is None:
                return None
            allowed: set = set(seg_free)
            for index in seg_owners:
                allowed.update(comp_vertices[index])
            return frozenset(allowed)

        def accumulate(vertex: VertexId) -> None:
            here = owner(vertex)
            if here is None:
                seg_free.add(vertex)
            else:
                seg_owners.add(here)

        for t in range(plan.horizon):
            vertex = int(positions[t])
            here = owner(vertex)
            appended = False
            if (
                t > 0
                and system is not None
                and here is not None
                and here != owner(int(positions[t - 1]))
            ):
                # Entry breadcrumb.  Its corridor deliberately excludes the
                # entered component's interior — only the entry vertex itself
                # is admitted.  Were the whole component included, the router
                # could slip across any physically-adjacent border between the
                # previous component and the new one instead of crossing at
                # the promised vertex, producing component transitions the
                # traffic graph never licensed.
                allowed = corridor()
                if allowed is not None:
                    allowed = frozenset(allowed | {vertex})
                out.append([vertex, t, None, allowed])
                appended = True
            accumulate(vertex)
            if t < plan.horizon - 1 and carrying[t + 1] != carrying[t]:
                if appended:
                    # The entry breadcrumb and the load change coincide.
                    out[-1][2] = int(carrying[t + 1])
                else:
                    out.append([vertex, t, int(carrying[t + 1]), corridor()])
                    appended = True
            if appended:
                # Start the next leg's corridor at this goal's position.
                seg_owners.clear()
                seg_free.clear()
                accumulate(vertex)
        specs.append([tuple(entry) for entry in out])
    return specs


def free_flow_cost(
    floorplan: FloorplanGraph,
    start: VertexId,
    goals: Tuple[VertexId, ...],
    distance_cache: Optional[Dict[VertexId, Dict[VertexId, int]]] = None,
) -> int:
    """Single-agent BFS cost of visiting ``goals`` in order from ``start``.

    This is the congestion-free lower bound a solo agent would achieve; the
    routed cost divided by this is the path-length inflation.  ``distance_cache``
    memoizes one BFS per unique goal vertex across agents.
    """
    cache = distance_cache if distance_cache is not None else {}
    total = 0
    current = start
    for goal in goals:
        if goal not in cache:
            cache[goal] = floorplan.bfs_distances(goal)
        distances = cache[goal]
        if current not in distances:
            raise RoutingError(
                f"waypoint {goal} is unreachable from vertex {current}"
            )
        total += distances[current]
        current = goal
    return total


def edge_traversal_counts(
    paths: Tuple[Tuple[VertexId, ...], ...]
) -> Dict[Tuple[VertexId, VertexId], int]:
    """Undirected per-edge crossing counts over a set of routed paths."""
    counts: Dict[Tuple[VertexId, VertexId], int] = {}
    for path in paths:
        for u, v in zip(path, path[1:]):
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            counts[key] = counts.get(key, 0) + 1
    return counts


def edge_load_by_vertex(
    num_vertices: int, edge_traversals: Dict[Tuple[VertexId, VertexId], int]
) -> np.ndarray:
    """Per-vertex sum of incident edge crossings (the edge heatmap's raster)."""
    load = np.zeros(num_vertices, dtype=np.int64)
    for (u, v), crossings in edge_traversals.items():
        load[u] += crossings
        load[v] += crossings
    return load


# ---------------------------------------------------------------------------
# routing a realized plan
# ---------------------------------------------------------------------------

def route_plan(
    plan: Plan, config: RoutingConfig, system=None
) -> Tuple[Plan, RoutingReport]:
    """Route a realized plan's waypoints on the grid; return the routed plan.

    The routed plan preserves the original's *logistics* (every agent picks
    up and drops off the same products at the same vertices, in the same
    order) but replaces its *motion* with MAPF paths over the full floorplan.
    The result is a structurally valid :class:`~repro.warehouse.plan.Plan`
    (collision-free, unit moves, condition-(3) load changes) that the
    abstract executors run unchanged.

    Passing the plan's :class:`~repro.traffic.system.TrafficSystem` (the
    runner does) additionally pins paced routing to the plan's component
    circuit via breadcrumb goals — see :func:`plan_goal_specs`.
    """
    if not config.is_grid_routed:
        raise RoutingError("route_plan requires a grid router, not 'abstract'")
    start_time = time.perf_counter()
    floorplan = plan.warehouse.floorplan
    specs = plan_goal_specs(plan, system if config.pace_to_plan else None)

    tasks = [
        LifelongTask(
            agent_id=agent,
            start=int(plan.positions[agent, 0]),
            goals=tuple(vertex for vertex, _, _, _ in specs[agent]),
            releases=(
                tuple(tick for _, tick, _, _ in specs[agent])
                if config.pace_to_plan
                else ()
            ),
            corridors=(
                tuple(corridor for _, _, _, corridor in specs[agent])
                if config.pace_to_plan and system is not None
                else ()
            ),
        )
        for agent in range(plan.num_agents)
    ]
    planner = IteratedPlanner(
        floorplan,
        IteratedPlannerOptions(
            engine=config.engine,
            suboptimality=config.suboptimality,
            time_limit=config.time_limit,
            max_episodes=config.max_episodes,
            per_episode_node_limit=config.node_limit,
            commit_window=config.effective_window,
        ),
    )
    result = planner.solve(tasks)

    # -- load-change schedule: each waypoint's change lands at arrival + 1 ----
    # Condition (3): the change at t+1 is decided at the vertex held at t,
    # i.e. the arrival tick.  Degenerate same-tick arrivals (consecutive
    # waypoints at one vertex completing in zero-move episodes) are pushed
    # one tick later each.
    schedules: List[List[Tuple[int, VertexId, ProductId]]] = []
    for agent in range(plan.num_agents):
        arrivals = result.goal_arrivals[agent] if result.goal_arrivals else ()
        schedule: List[Tuple[int, VertexId, ProductId]] = []
        previous_change = 0
        for (vertex, _, carry_after, _), arrival in zip(specs[agent], arrivals):
            if carry_after is None:
                continue  # corridor breadcrumb, not a load change
            change_at = max(arrival + 1, previous_change + 1)
            schedule.append((change_at, vertex, carry_after))
            previous_change = change_at
        schedules.append(schedule)

    # -- positions: routed paths, padded to a common horizon (agents rest).
    # The horizon covers every path AND every scheduled change (a waypoint
    # reached on an agent's final tick still needs its t+1 to exist).  Paced
    # runs additionally pad to the abstract plan's horizon so the contract
    # monitors measure per-period rates over the same timeline the plan
    # promised them on.
    horizon = max(
        2,
        plan.horizon if config.pace_to_plan else 2,
        max((len(path) for path in result.paths), default=2),
        max(
            (schedule[-1][0] + 1 for schedule in schedules if schedule),
            default=2,
        ),
    )
    positions = np.empty((plan.num_agents, horizon), dtype=np.int64)
    for agent, path in enumerate(result.paths):
        padded = list(path) + [path[-1]] * (horizon - len(path))
        positions[agent] = padded

    # -- carrying: replay each scheduled load change onto the routed motion ---
    carrying = np.empty((plan.num_agents, horizon), dtype=np.int64)
    carrying[:, :] = plan.carrying[:, 0].reshape(-1, 1)
    carry_mismatches = 0
    for agent, schedule in enumerate(schedules):
        for change_at, vertex, carry_after in schedule:
            if int(positions[agent, change_at - 1]) != vertex:
                carry_mismatches += 1
                continue
            carrying[agent, change_at:] = carry_after

    routed = Plan(
        positions=positions,
        carrying=carrying,
        warehouse=plan.warehouse,
        metadata={**plan.metadata, "grid_routed": 1.0},
    )

    # -- telemetry -------------------------------------------------------------
    cache: Dict[VertexId, Dict[VertexId, int]] = {}
    free_total = sum(
        free_flow_cost(floorplan, task.start, task.goals, cache) for task in tasks
    )
    # Per-agent routed cost: ticks to the last completed waypoint.  The
    # stitched paths all share one padded length (everyone commits the same
    # ticks per episode), so summing raw lengths would measure
    # num_agents × makespan — workload imbalance, not congestion.
    routed_total = 0
    leg_travel_total = 0
    for agent, task in enumerate(tasks):
        arrivals = result.goal_arrivals[agent] if result.goal_arrivals else ()
        if task.goals and len(arrivals) == len(task.goals):
            routed_total += arrivals[-1]
        elif task.goals:
            routed_total += len(result.paths[agent]) - 1
        starts = result.leg_starts[agent] if result.leg_starts else ()
        leg_travel_total += sum(
            arrival - start for arrival, start in zip(arrivals, starts)
        )
    report = RoutingReport(
        router=config.router,
        engine=config.engine,
        window=config.effective_window,
        completed=result.completed,
        goals_completed=result.goals_completed,
        goals_total=result.goals_total,
        replans=result.episodes,
        expansions=result.expansions,
        conflicts=len(find_conflicts(result.paths)),
        routed_cost=routed_total,
        free_flow_cost=free_total,
        carry_mismatches=carry_mismatches,
        edge_traversals=edge_traversal_counts(result.paths),
        runtime_seconds=time.perf_counter() - start_time,
        status=result.status,
        leg_travel_cost=leg_travel_total,
    )
    return routed, report
