"""Prioritized planning (cooperative A*).

Agents are planned one at a time in a fixed priority order; each agent's path
is found with space-time A* against a reservation table containing the paths
of all higher-priority agents.  Fast and usually good, but incomplete: a
low-priority agent can be boxed in by earlier reservations, in which case the
solver reports failure (callers may retry with a different order).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .astar import SearchStats, space_time_astar
from .constraints import ReservationTable
from .heuristics import agent_table, distance_tables
from .problem import MAPFProblem, MAPFSolution


def solve_prioritized(
    problem: MAPFProblem,
    order: Optional[Sequence[int]] = None,
    max_timestep: Optional[int] = None,
) -> Optional[MAPFSolution]:
    """Plan all agents in priority order; returns None when any agent fails.

    ``order`` lists agent ids from highest to lowest priority (default: the
    problem's agent order).
    """
    start_time = time.perf_counter()
    order = list(order) if order is not None else [a.agent_id for a in problem.agents]
    if sorted(order) != sorted(a.agent_id for a in problem.agents):
        raise ValueError("priority order must be a permutation of the agent ids")

    reservations = ReservationTable()
    stats = SearchStats()
    tables = distance_tables(problem.floorplan)
    paths = {}
    for agent_id in order:
        agent = problem.agents[agent_id]
        heuristic = agent_table(tables, agent)
        path = space_time_astar(
            problem.floorplan,
            agent.start,
            agent.goal,
            agent=agent_id,
            reservations=reservations,
            max_timestep=max_timestep,
            heuristic=heuristic,
            stats=stats,
        )
        if path is None:
            return None
        reservations.reserve_path(path)
        paths[agent_id] = path

    solution = MAPFSolution(
        problem=problem,
        paths=tuple(paths[a.agent_id] for a in problem.agents),
        expansions=stats.expansions,
        runtime_seconds=time.perf_counter() - start_time,
        solver="prioritized",
    )
    return solution
