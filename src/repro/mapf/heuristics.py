"""Shared true-distance heuristic tables for the MAPF search core.

Every low-level search in this package is guided by the single-agent BFS
distance-to-goal — the classic admissible, consistent MAPF heuristic.  The
seed implementation recomputed that BFS (a per-vertex Python dict) once per
``shortest_path_lengths`` call, i.e. once per agent per CBS/ECBS *episode*;
on lifelong instances with dozens of replan episodes the heuristic phase
alone rivalled the search itself.

:class:`DistanceTables` fixes the cost structure:

* the floorplan's adjacency is flattened once into CSR-style numpy arrays
  (``indptr`` / ``indices``), so a BFS wavefront expands with vectorized
  gather/scatter operations instead of per-neighbor dict probes;
* one ``int32`` distance row is computed per *goal vertex* and memoized, so
  every low-level call, every CT node, and every replan episode that targets
  the same goal shares one table;
* tables are cached per floorplan (keyed by object identity with weak
  cleanup), matching the ``FloorplanGraph.from_grid`` memo: repeated scenario
  builds of one map share both the graph and its distance tables.

Unreachable vertices hold :data:`UNREACHABLE` (-1); callers test with
``table[v] >= 0`` instead of dict membership.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..warehouse.floorplan import FloorplanGraph, VertexId

#: Sentinel distance for vertices a goal cannot be reached from.
UNREACHABLE = -1


class DistanceTables:
    """Per-floorplan cache of vectorized single-source BFS distance rows."""

    def __init__(self, floorplan: FloorplanGraph) -> None:
        adjacency = floorplan.adjacency
        degrees = np.fromiter(
            (len(neighbors) for neighbors in adjacency),
            dtype=np.int64,
            count=len(adjacency),
        )
        self.num_vertices = len(adjacency)
        self.indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.indptr[1:])
        self.indices = np.fromiter(
            (n for neighbors in adjacency for n in neighbors),
            dtype=np.int64,
            count=int(self.indptr[-1]),
        )
        self._tables: Dict[VertexId, np.ndarray] = {}
        self._masked: Dict[Tuple[VertexId, FrozenSet[VertexId]], np.ndarray] = {}

    def table(
        self, goal: VertexId, corridor: Optional[FrozenSet[VertexId]] = None
    ) -> np.ndarray:
        """BFS distances to ``goal`` as an ``int32`` row (-1 = unreachable).

        With a ``corridor`` (an allowed-vertex set), distances are computed on
        the induced subgraph: vertices outside the corridor stay -1, which the
        low-level searches treat as walls — the standard way to confine an
        agent's motion to a designated region of the floorplan.
        """
        if corridor is None:
            cached = self._tables.get(goal)
            if cached is None:
                cached = self._bfs(goal)
                self._tables[goal] = cached
            return cached
        key = (goal, corridor)
        cached = self._masked.get(key)
        if cached is None:
            allowed = np.zeros(self.num_vertices, dtype=bool)
            allowed[list(corridor)] = True
            cached = self._bfs(goal, allowed)
            self._masked[key] = cached
        return cached

    def distance(self, source: VertexId, goal: VertexId) -> int:
        """True single-agent distance ``source -> goal`` (-1 when unreachable)."""
        return int(self.table(goal)[source])

    def _bfs(self, source: VertexId, allowed: Optional[np.ndarray] = None) -> np.ndarray:
        """Vectorized BFS wavefront over the CSR adjacency."""
        distances = np.full(self.num_vertices, UNREACHABLE, dtype=np.int32)
        if not 0 <= source < self.num_vertices:
            raise ValueError(f"BFS source {source} outside the floorplan")
        if allowed is not None and not allowed[source]:
            return distances
        distances[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            starts = self.indptr[frontier]
            counts = self.indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather every neighbor of the wavefront in one shot: for each
            # frontier vertex expand its CSR slice [start, start+count).
            offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            neighbors = self.indices[offsets + np.arange(total)]
            fresh_mask = distances[neighbors] == UNREACHABLE
            if allowed is not None:
                fresh_mask &= allowed[neighbors]
            fresh = neighbors[fresh_mask]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh)
            depth += 1
            distances[frontier] = depth
        return distances

    @property
    def cached_goals(self) -> int:
        return len(self._tables)


#: Weak per-floorplan registry: tables die with their graph.
_TABLES: "weakref.WeakValueDictionary[int, DistanceTables]" = weakref.WeakValueDictionary()
_OWNERS: "weakref.WeakValueDictionary[int, FloorplanGraph]" = weakref.WeakValueDictionary()


def distance_tables(floorplan: FloorplanGraph) -> DistanceTables:
    """The shared :class:`DistanceTables` of a floorplan graph.

    Keyed by object identity (floorplan graphs are memoized and treated as
    immutable); a dead graph releases its tables, and an identity collision
    with a *different* live graph is impossible while the owner is alive.
    """
    key = id(floorplan)
    tables = _TABLES.get(key)
    if tables is not None and _OWNERS.get(key) is floorplan:
        return tables
    tables = DistanceTables(floorplan)
    _TABLES[key] = tables
    _OWNERS[key] = floorplan
    return tables


def agent_table(tables: DistanceTables, agent) -> np.ndarray:
    """Distance row for one MAPF agent, honoring its corridor when usable.

    Falls back to the unmasked table when the corridor does not connect the
    agent's start to its goal (e.g. the agent strayed off its corridor while
    idling) — confinement is a routing preference, never a completeness trap.
    """
    corridor = getattr(agent, "corridor", None)
    if corridor is not None:
        table = tables.table(agent.goal, corridor)
        if table[agent.start] >= 0:
            return table
    return tables.table(agent.goal)


def heuristic_array(
    floorplan: FloorplanGraph, goal: VertexId, heuristic=None
) -> Optional[np.ndarray]:
    """Normalize a caller-provided heuristic into an ``int32`` distance row.

    Accepts ``None`` (compute/share the true-distance table), an ndarray
    (used as-is), or the legacy ``Dict[vertex, distance]`` shape the public
    API documented before the table rewrite.
    """
    if heuristic is None:
        return distance_tables(floorplan).table(goal)
    if isinstance(heuristic, np.ndarray):
        return heuristic
    table = np.full(floorplan.num_vertices, UNREACHABLE, dtype=np.int32)
    for vertex, value in heuristic.items():
        table[vertex] = value
    return table
