"""MAPF / MAPD baselines: space-time A*, prioritized planning, CBS, ECBS, lifelong.

These solvers are the comparison substrate for the paper's evaluation (an
Iterated-EECBS-style lifelong planner given the same shelf/station visit
sequences as the co-design solution).  They are complete, tested
implementations in their own right and can be used independently of the
co-design pipeline.
"""

from .astar import (
    SearchStats,
    count_path_conflicts,
    shortest_path_lengths,
    space_time_astar,
    space_time_focal_astar,
)
from .cbs import CBSOptions, solve_cbs
from .constraints import Constraint, ConstraintSet, ReservationTable
from .ecbs import ECBSOptions, solve_ecbs
from .heuristics import DistanceTables, agent_table, distance_tables
from .mapd import (
    ENGINES,
    STATUS_COMPLETED,
    STATUS_EPISODE_LIMIT,
    STATUS_STALLED,
    STATUS_TIME_LIMIT,
    IteratedPlanner,
    IteratedPlannerOptions,
    LifelongError,
    LifelongResult,
    LifelongTask,
    goal_sequences_from_plan,
)
from .prioritized import solve_prioritized
from .problem import (
    Conflict,
    MAPFAgent,
    MAPFError,
    MAPFProblem,
    MAPFSolution,
    count_conflicts,
    find_conflicts,
    first_conflict,
    position_at,
)

__all__ = [
    "CBSOptions",
    "Conflict",
    "Constraint",
    "ConstraintSet",
    "DistanceTables",
    "ECBSOptions",
    "ENGINES",
    "IteratedPlanner",
    "IteratedPlannerOptions",
    "LifelongError",
    "LifelongResult",
    "LifelongTask",
    "MAPFAgent",
    "MAPFError",
    "MAPFProblem",
    "MAPFSolution",
    "ReservationTable",
    "STATUS_COMPLETED",
    "STATUS_EPISODE_LIMIT",
    "STATUS_STALLED",
    "STATUS_TIME_LIMIT",
    "SearchStats",
    "agent_table",
    "count_conflicts",
    "count_path_conflicts",
    "distance_tables",
    "find_conflicts",
    "first_conflict",
    "goal_sequences_from_plan",
    "position_at",
    "shortest_path_lengths",
    "solve_cbs",
    "solve_ecbs",
    "solve_prioritized",
    "space_time_astar",
    "space_time_focal_astar",
]
