"""ECBS — bounded-suboptimal Conflict-Based Search (the EECBS family).

ECBS(w) relaxes CBS at both levels with focal search:

* the low level returns a path whose cost is within ``w`` of that agent's
  optimum, preferring paths that collide little with the other agents
  (:func:`repro.mapf.astar.space_time_focal_astar`);
* the high level keeps, next to the cost-ordered open list, a *focal list*
  of nodes whose lower bound is within ``w`` of the global lower bound and
  expands the one with the fewest conflicts.

The result is a solution whose sum-of-costs is at most ``w`` times the optimal
one, found orders of magnitude faster than CBS on congested instances.  EECBS
(the paper's baseline) additionally uses online cost estimates to pick nodes;
the scaling behaviour that matters for the paper's comparison — exponential
growth with team size and plan length — is shared by the whole family, and the
lifelong wrapper in :mod:`repro.mapf.mapd` is built on this solver.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import span
from .astar import SearchStats, shortest_path_lengths, space_time_focal_astar
from .cbs import _branch_constraints
from .constraints import ConstraintSet
from .problem import MAPFProblem, MAPFSolution, Path, find_conflicts, first_conflict


@dataclass
class ECBSOptions:
    """Suboptimality factor and search limits."""

    suboptimality: float = 1.5
    max_nodes: int = 20_000
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.suboptimality < 1.0:
            raise ValueError("the suboptimality factor must be at least 1.0")


@dataclass
class _Node:
    cost: int
    lower_bound: int
    conflicts: int
    order: int
    constraints: ConstraintSet
    paths: Tuple[Path, ...]
    bounds: Tuple[int, ...]


def solve_ecbs(
    problem: MAPFProblem, options: Optional[ECBSOptions] = None
) -> Optional[MAPFSolution]:
    """Bounded-suboptimal MAPF via ECBS(w); returns None on failure."""
    options = options or ECBSOptions()
    start_time = time.perf_counter()
    floorplan = problem.floorplan
    stats = SearchStats()
    expanded = 0
    generated = 1  # the root
    with span(
        "mapf.ecbs", agents=len(problem.agents), suboptimality=options.suboptimality
    ) as sp:
        try:
            with sp.timer("heuristic"):
                heuristics = {
                    agent.agent_id: shortest_path_lengths(floorplan, agent.goal)
                    for agent in problem.agents
                }

            def plan_agent(
                agent_id: int, constraints: ConstraintSet, other_paths: List[Path]
            ) -> Optional[Tuple[Path, int]]:
                agent = problem.agents[agent_id]
                return space_time_focal_astar(
                    floorplan,
                    agent.start,
                    agent.goal,
                    agent=agent_id,
                    constraints=constraints,
                    other_paths=other_paths,
                    suboptimality=options.suboptimality,
                    heuristic=heuristics[agent_id],
                    stats=stats,
                )

            root_constraints = ConstraintSet()
            root_paths: List[Path] = []
            root_bounds: List[int] = []
            for agent in problem.agents:
                with sp.timer("low_level"):
                    result = plan_agent(agent.agent_id, root_constraints, root_paths)
                if result is None:
                    sp.set_attr("outcome", "root_unsolvable")
                    return None
                path, bound = result
                root_paths.append(path)
                root_bounds.append(bound)

            counter = itertools.count()
            with sp.timer("conflict_detection"):
                root_conflicts = len(find_conflicts(root_paths))
            with sp.timer("ct_management"):
                root = _Node(
                    cost=sum(len(p) - 1 for p in root_paths),
                    lower_bound=sum(root_bounds),
                    conflicts=root_conflicts,
                    order=next(counter),
                    constraints=root_constraints,
                    paths=tuple(root_paths),
                    bounds=tuple(root_bounds),
                )
                # open: ordered by lower bound; focal: by number of conflicts.
                open_list: List[Tuple[int, int, _Node]] = [
                    (root.lower_bound, root.order, root)
                ]

            while open_list:
                if expanded >= options.max_nodes:
                    sp.set_attr("outcome", "node_limit")
                    return None
                if (
                    options.time_limit is not None
                    and time.perf_counter() - start_time > options.time_limit
                ):
                    sp.set_attr("outcome", "time_limit")
                    return None
                with sp.timer("ct_management"):
                    best_bound = min(item[0] for item in open_list)
                    threshold = options.suboptimality * best_bound
                    focal = [item for item in open_list if item[2].cost <= threshold]
                    focal.sort(
                        key=lambda item: (item[2].conflicts, item[2].cost, item[1])
                    )
                    chosen = focal[0]
                    open_list.remove(chosen)
                node = chosen[2]
                expanded += 1

                with sp.timer("conflict_detection"):
                    conflict = first_conflict(node.paths)
                sp.add("conflict_checks")
                if conflict is None:
                    sp.set_attr("outcome", "solved")
                    return MAPFSolution(
                        problem=problem,
                        paths=node.paths,
                        expansions=stats.expansions,
                        runtime_seconds=time.perf_counter() - start_time,
                        solver=f"ecbs({options.suboptimality})",
                        metadata={
                            "ct_nodes": float(expanded),
                            "lower_bound": float(best_bound),
                        },
                    )
                for constraint in _branch_constraints(conflict):
                    child_constraints = node.constraints.extended(constraint)
                    other_paths = [
                        path
                        for i, path in enumerate(node.paths)
                        if i != constraint.agent
                    ]
                    with sp.timer("low_level"):
                        result = plan_agent(
                            constraint.agent, child_constraints, other_paths
                        )
                    if result is None:
                        continue
                    new_path, new_bound = result
                    child_paths = list(node.paths)
                    child_paths[constraint.agent] = new_path
                    child_bounds = list(node.bounds)
                    child_bounds[constraint.agent] = new_bound
                    with sp.timer("conflict_detection"):
                        child_conflicts = len(find_conflicts(child_paths))
                    with sp.timer("ct_management"):
                        child = _Node(
                            cost=sum(len(p) - 1 for p in child_paths),
                            lower_bound=sum(child_bounds),
                            conflicts=child_conflicts,
                            order=next(counter),
                            constraints=child_constraints,
                            paths=tuple(child_paths),
                            bounds=tuple(child_bounds),
                        )
                        open_list.append((child.lower_bound, child.order, child))
                    generated += 1
            sp.set_attr("outcome", "exhausted")
            return None
        finally:
            sp.add("ct_nodes_expanded", expanded)
            sp.add("ct_nodes_generated", generated)
            sp.add("low_level_expansions", stats.expansions)
            sp.add("low_level_generated", stats.generated)
