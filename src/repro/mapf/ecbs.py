"""ECBS — bounded-suboptimal Conflict-Based Search (the EECBS family).

ECBS(w) relaxes CBS at both levels with focal search:

* the low level returns a path whose cost is within ``w`` of that agent's
  optimum, preferring paths that collide little with the other agents
  (:func:`repro.mapf.astar.space_time_focal_astar`);
* the high level keeps, next to the cost-ordered open list, a *focal list*
  of nodes whose cost is within ``w`` of the global lower bound and expands
  the one with the fewest conflicts.

The result is a solution whose sum-of-costs is at most ``w`` times the optimal
one, found orders of magnitude faster than CBS on congested instances.  EECBS
(the paper's baseline) additionally uses online cost estimates to pick nodes;
the scaling behaviour that matters for the paper's comparison — exponential
growth with team size and plan length — is shared by the whole family, and the
lifelong wrapper in :mod:`repro.mapf.mapd` is built on this solver.

The high level maintains the open/focal pair incrementally (three lazy heaps:
lower-bound order, cost order for unswept nodes, and the focal heap itself)
instead of rescanning and re-sorting the whole open list per expansion, reuses
the shared per-goal distance tables, counts child conflicts without
materializing conflict objects, and dedupes constraint-tree nodes whose
constraint sets were already explored via a different branch order.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs import span
from .astar import SearchStats, space_time_focal_astar
from .cbs import _branch_constraints
from .constraints import ConstraintSet
from .heuristics import agent_table, distance_tables
from .problem import MAPFProblem, MAPFSolution, Path, count_conflicts, first_conflict


@dataclass
class ECBSOptions:
    """Suboptimality factor and search limits."""

    suboptimality: float = 1.5
    max_nodes: int = 20_000
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.suboptimality < 1.0:
            raise ValueError("the suboptimality factor must be at least 1.0")


@dataclass
class _Node:
    cost: int
    lower_bound: int
    conflicts: int
    order: int
    constraints: ConstraintSet
    paths: Tuple[Path, ...]
    bounds: Tuple[int, ...]
    expanded: bool = False


def solve_ecbs(
    problem: MAPFProblem, options: Optional[ECBSOptions] = None
) -> Optional[MAPFSolution]:
    """Bounded-suboptimal MAPF via ECBS(w); returns None on failure."""
    options = options or ECBSOptions()
    start_time = time.perf_counter()
    floorplan = problem.floorplan
    stats = SearchStats()
    expanded = 0
    generated = 1  # the root
    deduped = 0
    with span(
        "mapf.ecbs", agents=len(problem.agents), suboptimality=options.suboptimality
    ) as sp:
        try:
            with sp.timer("heuristic"):
                tables = distance_tables(floorplan)
                heuristics = {
                    agent.agent_id: agent_table(tables, agent)
                    for agent in problem.agents
                }

            def plan_agent(
                agent_id: int, constraints: ConstraintSet, other_paths: List[Path]
            ) -> Optional[Tuple[Path, int]]:
                agent = problem.agents[agent_id]
                return space_time_focal_astar(
                    floorplan,
                    agent.start,
                    agent.goal,
                    agent=agent_id,
                    constraints=constraints,
                    other_paths=other_paths,
                    suboptimality=options.suboptimality,
                    heuristic=heuristics[agent_id],
                    stats=stats,
                )

            root_constraints = ConstraintSet()
            root_paths: List[Path] = []
            root_bounds: List[int] = []
            for agent in problem.agents:
                with sp.timer("low_level"):
                    result = plan_agent(agent.agent_id, root_constraints, root_paths)
                if result is None:
                    sp.set_attr("outcome", "root_unsolvable")
                    return None
                path, bound = result
                root_paths.append(path)
                root_bounds.append(bound)

            counter = itertools.count()
            with sp.timer("conflict_detection"):
                root_conflicts = count_conflicts(root_paths)
            with sp.timer("ct_management"):
                root = _Node(
                    cost=sum(len(p) - 1 for p in root_paths),
                    lower_bound=sum(root_bounds),
                    conflicts=root_conflicts,
                    order=next(counter),
                    constraints=root_constraints,
                    paths=tuple(root_paths),
                    bounds=tuple(root_bounds),
                )
                # open: by lower bound (exact min via lazy pops); unswept: by
                # cost, swept into focal once the w * LB threshold reaches
                # them; focal: by (conflicts, cost, insertion).
                open_heap: List[Tuple[int, int, _Node]] = [
                    (root.lower_bound, root.order, root)
                ]
                unswept: List[Tuple[int, int, _Node]] = [(root.cost, root.order, root)]
                focal: List[Tuple[int, int, int, _Node]] = []
                seen_signatures = {root_constraints.signature()}
            best_bound = root.lower_bound

            while True:
                with sp.timer("ct_management"):
                    while open_heap and open_heap[0][2].expanded:
                        heapq.heappop(open_heap)
                    if not open_heap:
                        break
                    best_bound = open_heap[0][0]
                    threshold = options.suboptimality * best_bound
                    while unswept and unswept[0][0] <= threshold:
                        _, order, node = heapq.heappop(unswept)
                        if not node.expanded:
                            heapq.heappush(
                                focal, (node.conflicts, node.cost, order, node)
                            )
                    node = None
                    while focal:
                        _, cost, order, candidate = heapq.heappop(focal)
                        if candidate.expanded:
                            continue
                        if cost > threshold:
                            # The lower bound moved down (a child undercut its
                            # parent); park the node until the window regrows.
                            heapq.heappush(unswept, (cost, order, candidate))
                            continue
                        node = candidate
                        break
                    if node is None:
                        # Every focal candidate drained; the node holding the
                        # minimum lower bound is always eligible, re-sweep.
                        continue
                    node.expanded = True
                expanded += 1
                if expanded > options.max_nodes:
                    sp.set_attr("outcome", "node_limit")
                    return None
                if (
                    options.time_limit is not None
                    and time.perf_counter() - start_time > options.time_limit
                ):
                    sp.set_attr("outcome", "time_limit")
                    return None

                with sp.timer("conflict_detection"):
                    conflict = first_conflict(node.paths)
                sp.add("conflict_checks")
                if conflict is None:
                    sp.set_attr("outcome", "solved")
                    return MAPFSolution(
                        problem=problem,
                        paths=node.paths,
                        expansions=stats.expansions,
                        runtime_seconds=time.perf_counter() - start_time,
                        solver=f"ecbs({options.suboptimality})",
                        metadata={
                            "ct_nodes": float(expanded),
                            "lower_bound": float(best_bound),
                        },
                    )
                for constraint in _branch_constraints(conflict):
                    child_constraints = node.constraints.extended(constraint)
                    with sp.timer("ct_management"):
                        signature = child_constraints.signature()
                        if signature in seen_signatures:
                            deduped += 1
                            continue
                        seen_signatures.add(signature)
                    other_paths = [
                        path
                        for i, path in enumerate(node.paths)
                        if i != constraint.agent
                    ]
                    with sp.timer("low_level"):
                        result = plan_agent(
                            constraint.agent, child_constraints, other_paths
                        )
                    if result is None:
                        continue
                    new_path, new_bound = result
                    child_paths = list(node.paths)
                    child_paths[constraint.agent] = new_path
                    child_bounds = list(node.bounds)
                    child_bounds[constraint.agent] = new_bound
                    with sp.timer("conflict_detection"):
                        child_conflicts = count_conflicts(child_paths)
                    with sp.timer("ct_management"):
                        child = _Node(
                            cost=sum(len(p) - 1 for p in child_paths),
                            lower_bound=sum(child_bounds),
                            conflicts=child_conflicts,
                            order=next(counter),
                            constraints=child_constraints,
                            paths=tuple(child_paths),
                            bounds=tuple(child_bounds),
                        )
                        heapq.heappush(
                            open_heap, (child.lower_bound, child.order, child)
                        )
                        heapq.heappush(unswept, (child.cost, child.order, child))
                    generated += 1
            sp.set_attr("outcome", "exhausted")
            return None
        finally:
            sp.add("ct_nodes_expanded", expanded)
            sp.add("ct_nodes_generated", generated)
            sp.add("ct_nodes_deduped", deduped)
            sp.add("low_level_expansions", stats.expansions)
            sp.add("low_level_generated", stats.generated)
