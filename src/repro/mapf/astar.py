"""Single-agent low-level searches of every MAPF solver here — SIPP edition.

Three entry points:

* :func:`shortest_path_lengths` — true single-agent BFS distances used as the
  admissible heuristic, now served from the shared per-floorplan
  :class:`~repro.mapf.heuristics.DistanceTables` cache instead of re-running a
  dict BFS per call;
* :func:`space_time_astar` — *Safe Interval Path Planning* (SIPP): instead of
  expanding one node per (vertex, tick) — where almost every expansion on a
  congested map is a forced wait — the search state is (vertex, safe
  interval).  The blocked ticks of a vertex (its CBS constraints, transiting
  reservations, parked tails) partition its timeline into a handful of safe
  intervals, and one expansion covers every wait inside an interval.  g is the
  earliest arrival time in the interval, the heuristic is consistent for
  earliest arrival, so the search stays optimal while expanding orders of
  magnitude fewer nodes than per-tick A*;
* :func:`space_time_focal_astar` — the bounded-suboptimal ECBS low level.
  It stays time-expanded (its focal ordering needs per-tick collision counts
  against concrete paths) but replaces the seed's rebuild-the-focal-list-per-
  expansion selection with the classic two-structure scheme: a bucketed open
  list keyed by f plus a persistent focal heap swept incrementally as the
  w·f_min threshold grows, and O(1) occupancy probes instead of
  O(num_agents) path scans per generated node.

Both searches order their open lists with *bucket queues*: every edge costs
one tick and the BFS heuristic is consistent, so f-values are small dense
integers and a dict-of-stacks with a lazily drained key heap replaces the
binary heap's O(log n) pushes with O(1) appends.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId
from .constraints import ConstraintSet, ReservationTable
from .heuristics import distance_tables, heuristic_array
from .problem import Path, position_at

#: "Forever" for interval arithmetic — far beyond any reachable timestep.
_INF = 1 << 60


def shortest_path_lengths(
    floorplan: FloorplanGraph, goal: VertexId
) -> Dict[VertexId, int]:
    """BFS distances to ``goal`` (admissible, consistent heuristic).

    Kept as the documented dict-shaped public API; the distances now come from
    the shared vectorized :class:`~repro.mapf.heuristics.DistanceTables`, so
    repeated calls for one goal cost a cache lookup, not a BFS.
    """
    table = distance_tables(floorplan).table(goal)
    return {vertex: int(d) for vertex, d in enumerate(table) if d >= 0}


@dataclass
class SearchStats:
    """Node counters exposed by the searches (used in benchmark reports)."""

    expansions: int = 0
    generated: int = 0
    #: Collision probes done by the focal low level (one per generated node).
    conflict_checks: int = 0


class _BucketQueue:
    """Open list keyed by integer f-value: dict of stacks + lazy key heap.

    Pushes are O(1); pops take the minimum f bucket (LIFO within a bucket,
    which is deterministic and, with a consistent heuristic, keeps the search
    depth-first along the current best front).
    """

    __slots__ = ("_buckets", "_keys")

    def __init__(self) -> None:
        self._buckets: Dict[int, List] = {}
        self._keys: List[int] = []

    def push(self, f_value: int, item) -> None:
        bucket = self._buckets.get(f_value)
        if bucket is None:
            self._buckets[f_value] = [item]
            heapq.heappush(self._keys, f_value)
        else:
            bucket.append(item)

    def pop(self):
        """The next (f, item) in f order, or ``None`` when empty."""
        while self._keys:
            f_value = self._keys[0]
            bucket = self._buckets.get(f_value)
            if bucket:
                return f_value, bucket.pop()
            heapq.heappop(self._keys)
            del self._buckets[f_value]
        return None


def _merge_intervals(
    blocked: Sequence[int], parked_from: Optional[int]
) -> Tuple[Tuple[int, int], ...]:
    """Safe intervals of one vertex from its blocked ticks + parked tail.

    Returns inclusive ``(start, end)`` pairs in increasing order; the final
    interval ends at :data:`_INF` unless a parked agent blocks the vertex
    forever from some tick on.
    """
    horizon = parked_from
    times = sorted(
        {t for t in blocked if t >= 0 and (horizon is None or t < horizon)}
    )
    intervals: List[Tuple[int, int]] = []
    start = 0
    for t in times:
        if t > start:
            intervals.append((start, t - 1))
        start = t + 1
    if horizon is None:
        intervals.append((start, _INF))
    elif start < horizon:
        intervals.append((start, horizon - 1))
    return tuple(intervals)


class _SafeIntervals:
    """Lazy per-vertex safe-interval index for one agent's low-level search."""

    __slots__ = ("_constraint_blocked", "_reservations", "_cache")

    def __init__(
        self,
        agent: int,
        constraints: ConstraintSet,
        reservations: Optional[ReservationTable],
    ) -> None:
        self._constraint_blocked = constraints.vertex_blocked_times(agent)
        self._reservations = reservations
        self._cache: Dict[
            VertexId, Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]
        ] = {}

    def intervals(
        self, vertex: VertexId
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]:
        """``(intervals, starts)`` of a vertex; ``starts`` supports bisect."""
        cached = self._cache.get(vertex)
        if cached is None:
            blocked = list(self._constraint_blocked.get(vertex, ()))
            parked_from = None
            if self._reservations is not None:
                blocked.extend(self._reservations.blocked_times(vertex))
                parked_from = self._reservations.parked.get(vertex)
            intervals = _merge_intervals(blocked, parked_from)
            cached = (intervals, tuple(i[0] for i in intervals))
            self._cache[vertex] = cached
        return cached


def _locate(starts: Sequence[int], intervals, time: int) -> Optional[int]:
    """Index of the safe interval containing ``time``, or ``None``."""
    idx = bisect_right(starts, time) - 1
    if idx >= 0 and intervals[idx][1] >= time:
        return idx
    return None


def _reconstruct_sipp(
    parents: Dict, arrivals: Dict, state: Tuple[VertexId, int]
) -> Path:
    """Expand a SIPP state chain into a per-tick path (waits made explicit)."""
    chain: List[Tuple[VertexId, int]] = []
    current: Optional[Tuple[VertexId, int]] = state
    while current is not None:
        chain.append((current[0], arrivals[current]))
        current = parents.get(current)
    chain.reverse()
    path: List[VertexId] = [chain[0][0]]
    previous_vertex, previous_time = chain[0]
    for vertex, time in chain[1:]:
        path.extend([previous_vertex] * (time - previous_time - 1))
        path.append(vertex)
        previous_vertex, previous_time = vertex, time
    return tuple(path)


def space_time_astar(
    floorplan: FloorplanGraph,
    start: VertexId,
    goal: VertexId,
    agent: int = 0,
    constraints: Optional[ConstraintSet] = None,
    reservations: Optional[ReservationTable] = None,
    start_time: int = 0,
    max_timestep: Optional[int] = None,
    heuristic=None,
    stats: Optional[SearchStats] = None,
) -> Optional[Path]:
    """Optimal single-agent path in space-time under constraints / reservations.

    Returns the path as a vertex tuple whose first element is ``start`` at
    ``start_time`` (the returned path's timestamps are relative: index ``i``
    corresponds to absolute time ``start_time + i``), or ``None`` when no path
    exists within ``max_timestep``.

    ``heuristic`` accepts the legacy ``Dict[vertex, distance]`` shape or a
    numpy distance row; by default the shared per-floorplan table is used.
    """
    constraints = constraints or ConstraintSet()
    h = heuristic_array(floorplan, goal, heuristic)
    if h[start] < 0:
        return None
    stats = stats if stats is not None else SearchStats()
    horizon_guard = max_timestep if max_timestep is not None else (
        floorplan.num_vertices * 4
        + constraints.latest_constraint_time(agent)
        + (reservations.latest_reserved_time() if reservations else 0)
    )
    latest_arrival = start_time + horizon_guard

    safe = _SafeIntervals(agent, constraints, reservations)
    goal_intervals, _ = safe.intervals(goal)
    if not goal_intervals or goal_intervals[-1][1] != _INF:
        # A parked agent blocks the goal forever: resting there is impossible.
        return None
    goal_state = (goal, len(goal_intervals) - 1)

    start_intervals, start_starts = safe.intervals(start)
    start_idx = _locate(start_starts, start_intervals, start_time)
    if start_idx is None:
        return None
    start_state = (start, start_idx)

    edge_reservations = (
        reservations.edge_reservations if reservations is not None else None
    )

    def blocked_move(from_vertex: VertexId, to_vertex: VertexId, arrival: int) -> bool:
        if constraints.violates_edge(agent, from_vertex, to_vertex, arrival):
            return True
        # A swap happens when the opposite move is reserved for the same step.
        return (
            edge_reservations is not None
            and (to_vertex, from_vertex, arrival) in edge_reservations
        )

    arrivals: Dict[Tuple[VertexId, int], int] = {start_state: start_time}
    parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]] = {}
    closed: Set[Tuple[VertexId, int]] = set()
    open_queue = _BucketQueue()
    open_queue.push(int(h[start]), start_state)

    while True:
        popped = open_queue.pop()
        if popped is None:
            return None
        _, state = popped
        if state in closed:
            continue
        closed.add(state)
        stats.expansions += 1
        if state == goal_state:
            return _reconstruct_sipp(parents, arrivals, state)
        vertex, interval_idx = state
        g_time = arrivals[state]
        interval_end = safe.intervals(vertex)[0][interval_idx][1]
        # The agent may wait anywhere inside its interval before departing;
        # arrivals beyond the horizon cap are pruned.
        earliest = g_time + 1
        latest = min(interval_end + 1, latest_arrival)
        if latest < earliest:
            continue
        for neighbor in floorplan.neighbors(vertex):
            h_neighbor = int(h[neighbor])
            if h_neighbor < 0:
                continue
            nbr_intervals, nbr_starts = safe.intervals(neighbor)
            first = bisect_right(nbr_starts, earliest) - 1
            if first < 0:
                first = 0
            for idx in range(first, len(nbr_intervals)):
                lo, hi = nbr_intervals[idx]
                if lo > latest:
                    break
                arrival = max(earliest, lo)
                bound = min(latest, hi)
                while arrival <= bound and blocked_move(vertex, neighbor, arrival):
                    arrival += 1
                if arrival > bound:
                    continue
                next_state = (neighbor, idx)
                if arrival < arrivals.get(next_state, _INF):
                    arrivals[next_state] = arrival
                    parents[next_state] = state
                    stats.generated += 1
                    open_queue.push(arrival - start_time + h_neighbor, next_state)


def count_path_conflicts(
    path: Sequence[VertexId], other_paths: Sequence[Sequence[VertexId]], offset: int = 0
) -> int:
    """Number of vertex/edge collisions ``path`` has against ``other_paths``.

    Used as the focal-queue tie-breaking heuristic of ECBS.
    """
    conflicts = 0
    for t in range(len(path)):
        vertex = path[t]
        absolute = t + offset
        for other in other_paths:
            if position_at(other, absolute) == vertex:
                conflicts += 1
            if (
                t > 0
                and position_at(other, absolute) == path[t - 1]
                and position_at(other, absolute - 1) == vertex
            ):
                conflicts += 1
    return conflicts


class _Occupancy:
    """O(1) per-tick collision probes against a fixed set of paths.

    Built once per low-level call: per-timestep vertex occupancy counts, move
    counts for swap detection, and the rest-at-goal tail beyond the longest
    path.  Replaces the seed's O(num_paths) ``position_at`` scan per generated
    node.
    """

    __slots__ = ("_verts", "_moves", "_rest", "_horizon")

    def __init__(self, other_paths: Sequence[Sequence[VertexId]]) -> None:
        self._horizon = max((len(p) for p in other_paths), default=0)
        self._verts: List[Dict[VertexId, int]] = []
        for t in range(self._horizon):
            counts: Dict[VertexId, int] = {}
            for p in other_paths:
                v = position_at(p, t)
                counts[v] = counts.get(v, 0) + 1
            self._verts.append(counts)
        self._moves: Dict[Tuple[VertexId, VertexId, int], int] = {}
        self._rest: Dict[VertexId, int] = {}
        for p in other_paths:
            if p:
                self._rest[p[-1]] = self._rest.get(p[-1], 0) + 1
            for t in range(1, len(p)):
                if p[t - 1] != p[t]:
                    key = (p[t - 1], p[t], t)
                    self._moves[key] = self._moves.get(key, 0) + 1

    def probe(self, from_vertex: VertexId, to_vertex: VertexId, arrival: int) -> int:
        """Collisions incurred by moving ``from -> to`` arriving at ``arrival``."""
        if arrival < self._horizon:
            extra = self._verts[arrival].get(to_vertex, 0)
        else:
            extra = self._rest.get(to_vertex, 0)
        if from_vertex != to_vertex:
            extra += self._moves.get((to_vertex, from_vertex, arrival), 0)
        return extra


def _reconstruct(
    parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]],
    state: Tuple[VertexId, int],
) -> Path:
    path = [state[0]]
    while state in parents:
        state = parents[state]
        path.append(state[0])
    return tuple(reversed(path))


def space_time_focal_astar(
    floorplan: FloorplanGraph,
    start: VertexId,
    goal: VertexId,
    agent: int,
    constraints: ConstraintSet,
    other_paths: Sequence[Sequence[VertexId]],
    suboptimality: float = 1.5,
    heuristic=None,
    max_timestep: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[Tuple[Path, int]]:
    """Bounded-suboptimal low-level search (the ECBS low level).

    Expands, among the nodes whose f-value is within ``suboptimality`` of the
    best f in the open list, the one that collides least with ``other_paths``.
    Returns ``(path, lower_bound)`` where ``lower_bound`` is the minimum f-value
    seen in the open list (used by the high level to bound global cost), or
    ``None`` when no path exists.
    """
    h = heuristic_array(floorplan, goal, heuristic)
    if h[start] < 0:
        return None
    stats = stats if stats is not None else SearchStats()
    goal_clear = constraints.latest_vertex_constraint(agent, goal) + 1
    horizon_guard = max_timestep if max_timestep is not None else (
        floorplan.num_vertices * 4 + constraints.latest_constraint_time(agent)
    )
    occupancy = _Occupancy(other_paths)

    counter = itertools.count()
    start_state = (start, 0)
    g_scores: Dict[Tuple[VertexId, int], int] = {start_state: 0}
    parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]] = {}
    conflict_cache: Dict[Tuple[VertexId, int], int] = {start_state: 0}
    closed: Set[Tuple[VertexId, int]] = set()

    # Two-structure focal search: unswept nodes live in f-keyed buckets; once
    # the (monotonically growing) threshold w * f_min reaches a bucket, its
    # entries move to the focal heap ordered by (conflicts, f, g).  ``live``
    # counts unexpanded entries per f so f_min is read off a lazily drained
    # key heap without scanning the open list.
    buckets: Dict[int, List] = {}
    sweep_heap: List[int] = []
    fmin_heap: List[int] = []
    live: Dict[int, int] = {}
    focal: List[Tuple[int, int, int, int, Tuple[VertexId, int]]] = []
    lower_bound = int(h[start])
    threshold = suboptimality * lower_bound

    def push(entry, f_value: int) -> None:
        live[f_value] = live.get(f_value, 0) + 1
        heapq.heappush(fmin_heap, f_value)
        if f_value <= threshold:
            heapq.heappush(focal, entry)
        else:
            bucket = buckets.get(f_value)
            if bucket is None:
                buckets[f_value] = [entry]
            else:
                bucket.append(entry)
            heapq.heappush(sweep_heap, f_value)

    push((0, int(h[start]), 0, next(counter), start_state), int(h[start]))

    while True:
        while fmin_heap and live.get(fmin_heap[0], 0) == 0:
            heapq.heappop(fmin_heap)
        if not fmin_heap:
            return None
        fmin = fmin_heap[0]
        if fmin > lower_bound:
            lower_bound = fmin
            threshold = suboptimality * fmin
        while sweep_heap and sweep_heap[0] <= threshold:
            f_key = heapq.heappop(sweep_heap)
            for entry in buckets.pop(f_key, ()):
                heapq.heappush(focal, entry)
        if not focal:
            # Only stale bookkeeping can leave focal empty here; the next
            # iteration drains it via the live counts.
            continue
        conflicts, f_value, g_value, _, state = heapq.heappop(focal)
        live[f_value] -= 1
        if state in closed:
            continue
        closed.add(state)
        vertex, time = state
        stats.expansions += 1
        if vertex == goal and time >= goal_clear:
            return _reconstruct(parents, state), lower_bound
        if time >= horizon_guard:
            continue
        for neighbor in (vertex,) + floorplan.neighbors(vertex):
            next_time = time + 1
            if constraints.violates_vertex(agent, neighbor, next_time):
                continue
            if neighbor != vertex and constraints.violates_edge(
                agent, vertex, neighbor, next_time
            ):
                continue
            h_neighbor = int(h[neighbor])
            if h_neighbor < 0:
                continue
            next_state = (neighbor, next_time)
            tentative = g_value + 1
            if tentative < g_scores.get(next_state, _INF):
                g_scores[next_state] = tentative
                parents[next_state] = state
                extra = occupancy.probe(vertex, neighbor, next_time)
                stats.conflict_checks += 1
                conflict_cache[next_state] = conflicts + extra
                stats.generated += 1
                push(
                    (
                        conflicts + extra,
                        tentative + h_neighbor,
                        tentative,
                        next(counter),
                        next_state,
                    ),
                    tentative + h_neighbor,
                )
