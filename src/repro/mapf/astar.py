"""Single-agent space-time A* — the low-level search of every MAPF solver here.

Two entry points:

* :func:`shortest_path_lengths` — plain BFS distances used as the admissible
  heuristic (true single-agent distance-to-goal, ignoring other agents);
* :func:`space_time_astar` — time-expanded A* that respects a
  :class:`~repro.mapf.constraints.ConstraintSet` (CBS/ECBS low level) and/or a
  :class:`~repro.mapf.constraints.ReservationTable` (prioritized planning and
  the lifelong planner), with waiting allowed.

A focal variant (:func:`space_time_focal_astar`) returns a path whose cost is
within ``w`` of the optimum while preferring paths with few collisions against
a given set of other paths — this is the low level used by ECBS.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId
from .constraints import ConstraintSet, ReservationTable
from .problem import Path, position_at


def shortest_path_lengths(
    floorplan: FloorplanGraph, goal: VertexId
) -> Dict[VertexId, int]:
    """BFS distances to ``goal`` (admissible, consistent heuristic)."""
    return floorplan.bfs_distances(goal)


@dataclass
class SearchStats:
    """Node counters exposed by the searches (used in benchmark reports)."""

    expansions: int = 0
    generated: int = 0
    #: Path-against-path collision probes done by the focal low level.
    conflict_checks: int = 0


def _reconstruct(parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]],
                 state: Tuple[VertexId, int]) -> Path:
    path = [state[0]]
    while state in parents:
        state = parents[state]
        path.append(state[0])
    return tuple(reversed(path))


def space_time_astar(
    floorplan: FloorplanGraph,
    start: VertexId,
    goal: VertexId,
    agent: int = 0,
    constraints: Optional[ConstraintSet] = None,
    reservations: Optional[ReservationTable] = None,
    start_time: int = 0,
    max_timestep: Optional[int] = None,
    heuristic: Optional[Dict[VertexId, int]] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[Path]:
    """Optimal single-agent path in space-time under constraints / reservations.

    Returns the path as a vertex tuple whose first element is ``start`` at
    ``start_time`` (the returned path's timestamps are relative: index ``i``
    corresponds to absolute time ``start_time + i``), or ``None`` when no path
    exists within ``max_timestep``.
    """
    constraints = constraints or ConstraintSet()
    heuristic = heuristic or shortest_path_lengths(floorplan, goal)
    if start not in heuristic:
        return None
    stats = stats if stats is not None else SearchStats()
    horizon_guard = max_timestep if max_timestep is not None else (
        floorplan.num_vertices * 4
        + constraints.latest_constraint_time(agent)
        + (reservations.latest_reserved_time() if reservations else 0)
    )
    earliest_goal = constraints.latest_constraint_time(agent)

    # Target-conflict rule: the agent rests at its goal forever once it
    # arrives, so the arrival must postdate every transiting reservation of
    # the goal vertex made by higher-priority agents.
    goal_free_from = (
        reservations.latest_vertex_time(goal) + 1 if reservations is not None else 0
    )

    counter = itertools.count()
    open_heap: List[Tuple[int, int, int, Tuple[VertexId, int]]] = []
    start_state = (start, start_time)
    g_scores: Dict[Tuple[VertexId, int], int] = {start_state: 0}
    parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]] = {}
    heapq.heappush(open_heap, (heuristic[start], 0, next(counter), start_state))
    closed: Set[Tuple[VertexId, int]] = set()

    while open_heap:
        f_value, g_value, _, state = heapq.heappop(open_heap)
        if state in closed:
            continue
        closed.add(state)
        vertex, time = state
        stats.expansions += 1
        if vertex == goal and time >= earliest_goal and time >= goal_free_from:
            return _reconstruct(parents, state)
        if time - start_time >= horizon_guard:
            continue
        for neighbor in (vertex,) + floorplan.neighbors(vertex):
            next_time = time + 1
            if constraints.violates_vertex(agent, neighbor, next_time):
                continue
            if neighbor != vertex and constraints.violates_edge(
                agent, vertex, neighbor, next_time
            ):
                continue
            if reservations is not None:
                if neighbor == vertex:
                    if not reservations.is_vertex_free(neighbor, next_time):
                        continue
                elif not reservations.is_move_free(vertex, neighbor, next_time):
                    continue
            next_state = (neighbor, next_time)
            tentative = g_value + 1
            if tentative < g_scores.get(next_state, float("inf")):
                g_scores[next_state] = tentative
                parents[next_state] = state
                stats.generated += 1
                estimate = heuristic.get(neighbor)
                if estimate is None:
                    continue
                heapq.heappush(
                    open_heap, (tentative + estimate, tentative, next(counter), next_state)
                )
    return None


def count_path_conflicts(
    path: Sequence[VertexId], other_paths: Sequence[Sequence[VertexId]], offset: int = 0
) -> int:
    """Number of vertex/edge collisions ``path`` has against ``other_paths``.

    Used as the focal-queue tie-breaking heuristic of ECBS.
    """
    conflicts = 0
    for t in range(len(path)):
        vertex = path[t]
        absolute = t + offset
        for other in other_paths:
            if position_at(other, absolute) == vertex:
                conflicts += 1
            if (
                t > 0
                and position_at(other, absolute) == path[t - 1]
                and position_at(other, absolute - 1) == vertex
            ):
                conflicts += 1
    return conflicts


def space_time_focal_astar(
    floorplan: FloorplanGraph,
    start: VertexId,
    goal: VertexId,
    agent: int,
    constraints: ConstraintSet,
    other_paths: Sequence[Sequence[VertexId]],
    suboptimality: float = 1.5,
    heuristic: Optional[Dict[VertexId, int]] = None,
    max_timestep: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[Tuple[Path, int]]:
    """Bounded-suboptimal low-level search (the ECBS low level).

    Expands, among the nodes whose f-value is within ``suboptimality`` of the
    best f in the open list, the one that collides least with ``other_paths``.
    Returns ``(path, lower_bound)`` where ``lower_bound`` is the minimum f-value
    seen in the open list (used by the high level to bound global cost), or
    ``None`` when no path exists.
    """
    heuristic = heuristic or shortest_path_lengths(floorplan, goal)
    if start not in heuristic:
        return None
    stats = stats if stats is not None else SearchStats()
    earliest_goal = constraints.latest_constraint_time(agent)
    horizon_guard = max_timestep if max_timestep is not None else (
        floorplan.num_vertices * 4 + earliest_goal
    )

    counter = itertools.count()
    start_state = (start, 0)
    g_scores: Dict[Tuple[VertexId, int], int] = {start_state: 0}
    parents: Dict[Tuple[VertexId, int], Tuple[VertexId, int]] = {}
    # open: ordered by f; focal: ordered by (conflicts, f).
    open_heap: List[Tuple[int, int, int, Tuple[VertexId, int]]] = []
    heapq.heappush(open_heap, (heuristic[start], 0, next(counter), start_state))
    conflict_cache: Dict[Tuple[VertexId, int], int] = {start_state: 0}
    closed: Set[Tuple[VertexId, int]] = set()
    lower_bound = heuristic[start]

    while open_heap:
        # Rebuild the focal set lazily: collect nodes within the bound.
        best_f = open_heap[0][0]
        lower_bound = max(lower_bound, best_f)
        threshold = suboptimality * best_f
        focal: List[Tuple[int, int, int, Tuple[VertexId, int]]] = []
        spill: List[Tuple[int, int, int, Tuple[VertexId, int]]] = []
        while open_heap and open_heap[0][0] <= threshold:
            item = heapq.heappop(open_heap)
            if item[3] in closed:
                continue
            focal.append(item)
        if not focal:
            if not open_heap:
                break
            continue
        focal.sort(key=lambda item: (conflict_cache.get(item[3], 0), item[0], item[1]))
        chosen = focal.pop(0)
        for item in focal:
            heapq.heappush(open_heap, item)
        f_value, g_value, _, state = chosen
        if state in closed:
            continue
        closed.add(state)
        vertex, time = state
        stats.expansions += 1
        if vertex == goal and time >= earliest_goal:
            return _reconstruct(parents, state), lower_bound
        if time >= horizon_guard:
            continue
        for neighbor in (vertex,) + floorplan.neighbors(vertex):
            next_time = time + 1
            if constraints.violates_vertex(agent, neighbor, next_time):
                continue
            if neighbor != vertex and constraints.violates_edge(
                agent, vertex, neighbor, next_time
            ):
                continue
            next_state = (neighbor, next_time)
            tentative = g_value + 1
            if tentative < g_scores.get(next_state, float("inf")):
                g_scores[next_state] = tentative
                parents[next_state] = state
                estimate = heuristic.get(neighbor)
                if estimate is None:
                    continue
                extra = 0
                for other in other_paths:
                    if position_at(other, next_time) == neighbor:
                        extra += 1
                    elif (
                        neighbor != vertex
                        and position_at(other, next_time) == vertex
                        and position_at(other, time) == neighbor
                    ):
                        extra += 1
                stats.conflict_checks += len(other_paths)
                conflict_cache[next_state] = conflict_cache.get(state, 0) + extra
                stats.generated += 1
                heapq.heappush(
                    open_heap,
                    (tentative + estimate, tentative, next(counter), next_state),
                )
    return None
