"""Lifelong / multi-goal planning: the paper's "Iterated EECBS" baseline.

The paper benchmarks its methodology against a search-based lifelong planner:
Iterated EECBS is given the start position of every agent of the co-design
solution and asked to find a plan in which every agent visits the same
sequence of shelves and stations.  This module implements that experiment
shape:

* :func:`goal_sequences_from_plan` extracts, for every agent of a realized
  co-design plan, the ordered list of vertices where it picked up or dropped
  off a product;
* :class:`IteratedPlanner` repeatedly solves one-shot MAPF instances ("give
  every agent its next pending goal") with a configurable solver — ECBS by
  default, CBS or prioritized planning for ablations — and stitches the
  resulting paths into one long plan.

The runtime of this baseline grows steeply with the number of agents and with
the number of goals per agent, which is exactly the scaling contrast the
paper's evaluation reports (the baseline fails to terminate within an hour on
the largest instance while the co-design methodology finishes in about a
minute).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.plan import Plan
from .cbs import CBSOptions, solve_cbs
from .ecbs import ECBSOptions, solve_ecbs
from .prioritized import solve_prioritized
from .problem import MAPFProblem, MAPFSolution, find_conflicts

#: Solvers usable as the per-episode engine.
ENGINES = ("ecbs", "cbs", "prioritized")


class LifelongError(ValueError):
    """Raised for malformed lifelong planning requests."""


@dataclass
class LifelongTask:
    """One agent's start position and ordered goal sequence."""

    agent_id: int
    start: VertexId
    goals: Tuple[VertexId, ...]


@dataclass
class LifelongResult:
    """Outcome of an :class:`IteratedPlanner` run."""

    completed: bool
    paths: Tuple[Tuple[VertexId, ...], ...]
    goals_completed: int
    goals_total: int
    episodes: int
    expansions: int
    runtime_seconds: float
    engine: str

    @property
    def makespan(self) -> int:
        return max((len(p) - 1 for p in self.paths), default=0)

    def is_collision_free(self) -> bool:
        return not find_conflicts(self.paths)

    def summary(self) -> str:
        status = "completed" if self.completed else "TIMED OUT"
        return (
            f"iterated {self.engine}: {status}, {self.goals_completed}/{self.goals_total} goals, "
            f"{self.episodes} episodes, makespan {self.makespan}, "
            f"{self.expansions} expansions, {self.runtime_seconds:.2f}s"
        )


@dataclass
class IteratedPlannerOptions:
    """Engine selection and limits for the lifelong baseline."""

    engine: str = "ecbs"
    suboptimality: float = 1.5
    time_limit: Optional[float] = None
    max_episodes: int = 10_000
    per_episode_node_limit: int = 20_000

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise LifelongError(f"engine must be one of {ENGINES}, got {self.engine!r}")


class IteratedPlanner:
    """Repeatedly solve one-shot MAPF instances until every goal is visited."""

    def __init__(self, floorplan: FloorplanGraph, options: Optional[IteratedPlannerOptions] = None):
        self.floorplan = floorplan
        self.options = options or IteratedPlannerOptions()

    # -- public API ----------------------------------------------------------------
    def solve(self, tasks: Sequence[LifelongTask]) -> LifelongResult:
        start_time = time.perf_counter()
        options = self.options
        pending: Dict[int, List[VertexId]] = {
            task.agent_id: list(task.goals) for task in tasks
        }
        positions: Dict[int, VertexId] = {task.agent_id: task.start for task in tasks}
        cumulative: Dict[int, List[VertexId]] = {
            task.agent_id: [task.start] for task in tasks
        }
        goals_total = sum(len(task.goals) for task in tasks)
        goals_completed = 0
        expansions = 0
        episodes = 0

        while any(pending.values()):
            if episodes >= options.max_episodes:
                break
            if (
                options.time_limit is not None
                and time.perf_counter() - start_time > options.time_limit
            ):
                break
            episodes += 1
            problem = self._episode_problem(tasks, positions, pending)
            remaining = None
            if options.time_limit is not None:
                remaining = options.time_limit - (time.perf_counter() - start_time)
                if remaining <= 0:
                    break
            solution = self._solve_episode(problem, remaining)
            if solution is None:
                break
            expansions += solution.expansions
            horizon = max(len(path) for path in solution.paths)
            for task, path in zip(tasks, solution.paths):
                agent_id = task.agent_id
                padded = list(path) + [path[-1]] * (horizon - len(path))
                cumulative[agent_id].extend(padded[1:])
                positions[agent_id] = padded[-1]
                if pending[agent_id] and padded[-1] == pending[agent_id][0]:
                    pending[agent_id].pop(0)
                    goals_completed += 1

        return LifelongResult(
            completed=not any(pending.values()),
            paths=tuple(tuple(cumulative[task.agent_id]) for task in tasks),
            goals_completed=goals_completed,
            goals_total=goals_total,
            episodes=episodes,
            expansions=expansions,
            runtime_seconds=time.perf_counter() - start_time,
            engine=options.engine,
        )

    # -- internals --------------------------------------------------------------------
    def _episode_problem(
        self,
        tasks: Sequence[LifelongTask],
        positions: Dict[int, VertexId],
        pending: Dict[int, List[VertexId]],
    ) -> MAPFProblem:
        goals: Dict[int, VertexId] = {}
        taken: set = set()
        pending_cells = {queue[0] for queue in pending.values() if queue}

        # First pass — agents with pending work head for their next goal; two
        # agents aiming at the same cell in the same episode cannot both finish
        # there, so the later one waits this episode.
        for task in tasks:
            queue = pending[task.agent_id]
            if not queue:
                continue
            current = positions[task.agent_id]
            goal = queue[0]
            if goal != current and goal in taken:
                goal = current
            taken.add(goal)
            goals[task.agent_id] = goal

        # Second pass — idle agents park where they are unless they block a
        # pending goal or an assigned episode goal, in which case they retreat
        # to the nearest free cell (the usual MAPD "move idle agents off task
        # endpoints" rule).
        for task in tasks:
            if task.agent_id in goals:
                continue
            current = positions[task.agent_id]
            goal = current
            if current in pending_cells or current in taken:
                goal = self._retreat_target(current, pending_cells | taken)
            taken.add(goal)
            goals[task.agent_id] = goal

        pairs = [(positions[task.agent_id], goals[task.agent_id]) for task in tasks]
        return MAPFProblem.from_pairs(self.floorplan, pairs)

    def _retreat_target(self, start: VertexId, blocked: set) -> VertexId:
        """Nearest vertex not in ``blocked`` (falls back to ``start`` if none)."""
        distances = self.floorplan.bfs_distances(start)
        for vertex in sorted(distances, key=distances.get):
            if vertex not in blocked:
                return vertex
        return start

    def _solve_episode(
        self, problem: MAPFProblem, time_limit: Optional[float]
    ) -> Optional[MAPFSolution]:
        options = self.options
        if options.engine == "cbs":
            return solve_cbs(
                problem,
                CBSOptions(max_nodes=options.per_episode_node_limit, time_limit=time_limit),
            )
        if options.engine == "prioritized":
            return solve_prioritized(problem)
        return solve_ecbs(
            problem,
            ECBSOptions(
                suboptimality=options.suboptimality,
                max_nodes=options.per_episode_node_limit,
                time_limit=time_limit,
            ),
        )


# ---------------------------------------------------------------------------
# bridging from co-design plans
# ---------------------------------------------------------------------------

def goal_sequences_from_plan(plan: Plan, max_goals_per_agent: Optional[int] = None) -> List[LifelongTask]:
    """Extract each agent's shelf/station visit sequence from a realized plan.

    A goal is recorded at every vertex where the agent's carried product
    changes (a pickup or a drop-off) — exactly the "same sequence of shelves
    and stations" the paper hands to its Iterated EECBS baseline.
    ``max_goals_per_agent`` truncates the sequences so scaled-down baseline
    comparisons stay tractable.
    """
    tasks: List[LifelongTask] = []
    for agent in range(plan.num_agents):
        carrying = plan.carrying[agent]
        positions = plan.positions[agent]
        goals: List[VertexId] = []
        for t in range(plan.horizon - 1):
            if carrying[t + 1] != carrying[t]:
                vertex = int(positions[t])
                if not goals or goals[-1] != vertex:
                    goals.append(vertex)
        if max_goals_per_agent is not None:
            goals = goals[:max_goals_per_agent]
        tasks.append(
            LifelongTask(agent_id=agent, start=int(positions[0]), goals=tuple(goals))
        )
    return tasks
