"""Lifelong / multi-goal planning: the paper's "Iterated EECBS" baseline.

The paper benchmarks its methodology against a search-based lifelong planner:
Iterated EECBS is given the start position of every agent of the co-design
solution and asked to find a plan in which every agent visits the same
sequence of shelves and stations.  This module implements that experiment
shape:

* :func:`goal_sequences_from_plan` extracts, for every agent of a realized
  co-design plan, the ordered list of vertices where it picked up or dropped
  off a product;
* :class:`IteratedPlanner` repeatedly solves one-shot MAPF instances ("give
  every agent its next pending goal") with a configurable solver — ECBS by
  default, CBS or prioritized planning for ablations — and stitches the
  resulting paths into one long plan.

Two replanning regimes are supported.  With the default
``commit_window=None`` every episode is committed in full: agents run all the
way to their next goal before anyone replans.  With a positive
``commit_window`` only the first ``commit_window`` steps of each episode's
solution are executed before the planner replans from the new positions —
the rolling-horizon scheme lifelong systems (RHCR-style) use.  Small windows
react quickly to the evolving goal set but pay for many more solver episodes;
large windows amortize the search but commit to stale paths longer.  The
grid-routed execution mode of :mod:`repro.sim.routing` exposes exactly this
trade-off.

The runtime of this baseline grows steeply with the number of agents and with
the number of goals per agent, which is exactly the scaling contrast the
paper's evaluation reports (the baseline fails to terminate within an hour on
the largest instance while the co-design methodology finishes in about a
minute).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.plan import Plan
from .cbs import CBSOptions, solve_cbs
from .ecbs import ECBSOptions, solve_ecbs
from .prioritized import solve_prioritized
from .problem import MAPFProblem, MAPFSolution, find_conflicts

#: Solvers usable as the per-episode engine.
ENGINES = ("ecbs", "cbs", "prioritized")


class LifelongError(ValueError):
    """Raised for malformed lifelong planning requests."""


@dataclass
class LifelongTask:
    """One agent's start position and ordered goal sequence."""

    agent_id: int
    start: VertexId
    goals: Tuple[VertexId, ...]


@dataclass
class LifelongResult:
    """Outcome of an :class:`IteratedPlanner` run."""

    completed: bool
    paths: Tuple[Tuple[VertexId, ...], ...]
    goals_completed: int
    goals_total: int
    episodes: int
    expansions: int
    runtime_seconds: float
    engine: str
    #: Per agent (in task order), the tick at which each *completed* goal was
    #: reached — ``goal_arrivals[i][j]`` indexes into ``paths[i]``.  Consumers
    #: that replay the plan (the grid-routed simulator) use these to anchor
    #: load changes to the tick the agent actually stood on the waypoint.
    goal_arrivals: Tuple[Tuple[int, ...], ...] = ()

    @property
    def makespan(self) -> int:
        return max((len(p) - 1 for p in self.paths), default=0)

    def is_collision_free(self) -> bool:
        return not find_conflicts(self.paths)

    def summary(self) -> str:
        status = "completed" if self.completed else "TIMED OUT"
        return (
            f"iterated {self.engine}: {status}, {self.goals_completed}/{self.goals_total} goals, "
            f"{self.episodes} episodes, makespan {self.makespan}, "
            f"{self.expansions} expansions, {self.runtime_seconds:.2f}s"
        )


@dataclass
class IteratedPlannerOptions:
    """Engine selection and limits for the lifelong baseline."""

    engine: str = "ecbs"
    suboptimality: float = 1.5
    time_limit: Optional[float] = None
    max_episodes: int = 10_000
    per_episode_node_limit: int = 20_000
    #: ``None`` commits every episode in full (replan only when an agent
    #: reaches its goal); a positive value commits only that many steps per
    #: episode before replanning from the new positions (rolling horizon).
    commit_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise LifelongError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.commit_window is not None and self.commit_window < 1:
            raise LifelongError(
                f"commit_window must be at least 1 step, got {self.commit_window}"
            )


class IteratedPlanner:
    """Repeatedly solve one-shot MAPF instances until every goal is visited."""

    def __init__(self, floorplan: FloorplanGraph, options: Optional[IteratedPlannerOptions] = None):
        self.floorplan = floorplan
        self.options = options or IteratedPlannerOptions()

    # -- public API ----------------------------------------------------------------
    def solve(self, tasks: Sequence[LifelongTask]) -> LifelongResult:
        start_time = time.perf_counter()
        options = self.options
        pending: Dict[int, List[VertexId]] = {
            task.agent_id: list(task.goals) for task in tasks
        }
        positions: Dict[int, VertexId] = {task.agent_id: task.start for task in tasks}
        cumulative: Dict[int, List[VertexId]] = {
            task.agent_id: [task.start] for task in tasks
        }
        arrivals: Dict[int, List[int]] = {task.agent_id: [] for task in tasks}
        goals_total = sum(len(task.goals) for task in tasks)
        goals_completed = 0
        expansions = 0
        episodes = 0

        while any(pending.values()):
            if episodes >= options.max_episodes:
                break
            if (
                options.time_limit is not None
                and time.perf_counter() - start_time > options.time_limit
            ):
                break
            episodes += 1
            problem = self._episode_problem(tasks, positions, pending)
            remaining = None
            if options.time_limit is not None:
                remaining = options.time_limit - (time.perf_counter() - start_time)
                if remaining <= 0:
                    break
            solution = self._solve_episode(problem, remaining)
            if solution is None:
                break
            expansions += solution.expansions
            horizon = max(len(path) for path in solution.paths)
            # Everyone commits the same number of ticks, so the stitched paths
            # stay aligned (a prefix of a collision-free episode solution is
            # itself collision-free).
            commit = (
                horizon
                if options.commit_window is None
                else min(horizon, options.commit_window + 1)
            )
            for task, path in zip(tasks, solution.paths):
                agent_id = task.agent_id
                base = len(cumulative[agent_id]) - 1  # tick of the current position
                padded = list(path) + [path[-1]] * (horizon - len(path))
                committed = padded[:commit]
                cumulative[agent_id].extend(committed[1:])
                positions[agent_id] = committed[-1]
                if pending[agent_id] and committed[-1] == pending[agent_id][0]:
                    pending[agent_id].pop(0)
                    goals_completed += 1
                    # The goal is normally reached at the path's end (index
                    # len(path) - 1); under a commit window the agent may also
                    # happen to stand on the goal exactly at the window edge
                    # while still en route (reservation detours can revisit
                    # the goal vertex), so clamp into the committed range.
                    arrivals[agent_id].append(base + min(len(path), commit) - 1)

        return LifelongResult(
            completed=not any(pending.values()),
            paths=tuple(tuple(cumulative[task.agent_id]) for task in tasks),
            goals_completed=goals_completed,
            goals_total=goals_total,
            episodes=episodes,
            expansions=expansions,
            runtime_seconds=time.perf_counter() - start_time,
            engine=options.engine,
            goal_arrivals=tuple(tuple(arrivals[task.agent_id]) for task in tasks),
        )

    # -- internals --------------------------------------------------------------------
    def _episode_problem(
        self,
        tasks: Sequence[LifelongTask],
        positions: Dict[int, VertexId],
        pending: Dict[int, List[VertexId]],
    ) -> MAPFProblem:
        goals: Dict[int, VertexId] = {}
        taken: set = set()
        pending_cells = {queue[0] for queue in pending.values() if queue}

        # First pass — agents with pending work head for their next goal; two
        # agents aiming at the same cell in the same episode cannot both finish
        # there, so the later one waits this episode.
        for task in tasks:
            queue = pending[task.agent_id]
            if not queue:
                continue
            current = positions[task.agent_id]
            goal = queue[0]
            if goal != current and goal in taken:
                goal = current
            taken.add(goal)
            goals[task.agent_id] = goal

        # Second pass — idle agents park where they are unless they block a
        # pending goal or an assigned episode goal, in which case they retreat
        # to the nearest free cell (the usual MAPD "move idle agents off task
        # endpoints" rule).
        for task in tasks:
            if task.agent_id in goals:
                continue
            current = positions[task.agent_id]
            goal = current
            if current in pending_cells or current in taken:
                goal = self._retreat_target(current, pending_cells | taken)
            taken.add(goal)
            goals[task.agent_id] = goal

        pairs = [(positions[task.agent_id], goals[task.agent_id]) for task in tasks]
        return MAPFProblem.from_pairs(self.floorplan, pairs)

    def _retreat_target(self, start: VertexId, blocked: set) -> VertexId:
        """Nearest reachable vertex not in ``blocked``.

        Must never raise: when every reachable vertex is blocked (tiny or
        saturated floorplans where all free cells are task endpoints), the
        agent waits in place — ``start`` is returned as the sentinel even
        though it is itself blocked.  The episode then degrades gracefully
        (the blocked agent parks and the solver reports the episode
        unsolvable or routes around it) instead of crashing the whole
        lifelong run.
        """
        distances = self.floorplan.bfs_distances(start)
        for vertex in sorted(distances, key=distances.get):
            if vertex not in blocked:
                return vertex
        # Fully blocked: wait in place (sentinel), never raise.
        return start

    def _solve_episode(
        self, problem: MAPFProblem, time_limit: Optional[float]
    ) -> Optional[MAPFSolution]:
        options = self.options
        if options.engine == "cbs":
            return solve_cbs(
                problem,
                CBSOptions(max_nodes=options.per_episode_node_limit, time_limit=time_limit),
            )
        if options.engine == "prioritized":
            # Prioritized planning is incomplete: a low-priority agent can be
            # boxed in by earlier reservations.  Retry every rotation of the
            # priority order (deterministic, at most n cheap solves) before
            # declaring the episode unsolvable.
            agent_ids = [agent.agent_id for agent in problem.agents]
            for shift in range(max(1, len(agent_ids))):
                order = agent_ids[shift:] + agent_ids[:shift]
                solution = solve_prioritized(problem, order=order)
                if solution is not None:
                    return solution
            return None
        return solve_ecbs(
            problem,
            ECBSOptions(
                suboptimality=options.suboptimality,
                max_nodes=options.per_episode_node_limit,
                time_limit=time_limit,
            ),
        )


# ---------------------------------------------------------------------------
# bridging from co-design plans
# ---------------------------------------------------------------------------

def goal_sequences_from_plan(plan: Plan, max_goals_per_agent: Optional[int] = None) -> List[LifelongTask]:
    """Extract each agent's shelf/station visit sequence from a realized plan.

    A goal is recorded at every vertex where the agent's carried product
    changes (a pickup or a drop-off) — exactly the "same sequence of shelves
    and stations" the paper hands to its Iterated EECBS baseline.
    ``max_goals_per_agent`` truncates the sequences so scaled-down baseline
    comparisons stay tractable.
    """
    tasks: List[LifelongTask] = []
    for agent in range(plan.num_agents):
        carrying = plan.carrying[agent]
        positions = plan.positions[agent]
        goals: List[VertexId] = []
        for t in range(plan.horizon - 1):
            if carrying[t + 1] != carrying[t]:
                vertex = int(positions[t])
                if not goals or goals[-1] != vertex:
                    goals.append(vertex)
        if max_goals_per_agent is not None:
            goals = goals[:max_goals_per_agent]
        tasks.append(
            LifelongTask(agent_id=agent, start=int(positions[0]), goals=tuple(goals))
        )
    return tasks
