"""Lifelong / multi-goal planning: the paper's "Iterated EECBS" baseline.

The paper benchmarks its methodology against a search-based lifelong planner:
Iterated EECBS is given the start position of every agent of the co-design
solution and asked to find a plan in which every agent visits the same
sequence of shelves and stations.  This module implements that experiment
shape:

* :func:`goal_sequences_from_plan` extracts, for every agent of a realized
  co-design plan, the ordered list of vertices where it picked up or dropped
  off a product;
* :class:`IteratedPlanner` repeatedly solves one-shot MAPF instances ("give
  every agent its next pending goal") with a configurable solver — ECBS by
  default, CBS or prioritized planning for ablations — and stitches the
  resulting paths into one long plan.

Two replanning regimes are supported.  With the default
``commit_window=None`` every episode is committed in full: agents run all the
way to their next goal before anyone replans.  With a positive
``commit_window`` only the first ``commit_window`` steps of each episode's
solution are executed before the planner replans from the new positions —
the rolling-horizon scheme lifelong systems (RHCR-style) use.  Small windows
react quickly to the evolving goal set but pay for many more solver episodes;
large windows amortize the search but commit to stale paths longer.  The
grid-routed execution mode of :mod:`repro.sim.routing` exposes exactly this
trade-off.

Tasks may carry per-goal *release ticks*.  A released goal is dispatched only
when it can no longer be finished early — when ``now + distance >= release``
— so arrivals never precede the tick the upstream plan promised.  This is how
the grid-routed simulator keeps the routed run on the abstract plan's
timeline: without pacing, routers compress a 400-tick plan into ~150 ticks
and every per-period flow rate the AG contracts promised is overshot.
Agents whose next goal is not yet released idle in place (retreating off task
endpoints as usual), episodes are committed only up to the next release
event, and stretches where *nothing* is dispatchable fast-forward without a
solver call.

An episode the engine cannot solve no longer silently truncates the run.
The planner retries with progressively fewer dispatched agents (holding the
agents with the most release slack first — the classic MAPD fallback of
parking low-urgency agents out of the way); only when not even a single
agent can make progress does it stop, and then the result carries an
explicit ``status`` ("stalled" / "episode_limit" / "time_limit") instead of
masquerading as a short-but-complete plan.

The runtime of this baseline grows steeply with the number of agents and with
the number of goals per agent, which is exactly the scaling contrast the
paper's evaluation reports (the baseline fails to terminate within an hour on
the largest instance while the co-design methodology finishes in about a
minute).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId
from ..warehouse.plan import Plan
from .cbs import CBSOptions, solve_cbs
from .ecbs import ECBSOptions, solve_ecbs
from .heuristics import distance_tables
from .prioritized import solve_prioritized
from .problem import MAPFProblem, MAPFSolution, find_conflicts

#: Solvers usable as the per-episode engine.
ENGINES = ("ecbs", "cbs", "prioritized")

#: Node budget for the demotion-ladder retries of an unsolvable episode: the
#: reduced instances are near-trivial when solvable at all, so failing fast
#: beats burning the full per-episode budget on each rung.
_FALLBACK_NODE_LIMIT = 2_000

#: Lifelong run outcomes (``LifelongResult.status``).
STATUS_COMPLETED = "completed"
STATUS_STALLED = "stalled"
STATUS_EPISODE_LIMIT = "episode_limit"
STATUS_TIME_LIMIT = "time_limit"


class LifelongError(ValueError):
    """Raised for malformed lifelong planning requests."""


@dataclass
class LifelongTask:
    """One agent's start position and ordered goal sequence.

    ``releases`` optionally pins each goal to a release tick: the planner
    dispatches the agent so it arrives no earlier than ``releases[k]`` at
    ``goals[k]``.  Empty means "as fast as possible" (the legacy behaviour).
    """

    agent_id: int
    start: VertexId
    goals: Tuple[VertexId, ...]
    releases: Tuple[int, ...] = ()
    #: Optional per-goal allowed-vertex sets (``None`` entries = unconfined):
    #: while pursuing goal ``k`` the agent's motion is confined to
    #: ``corridors[k]`` — how the grid router keeps each leg on the traffic
    #: system's designated circuit.
    corridors: Tuple[Optional[FrozenSet[VertexId]], ...] = ()

    def __post_init__(self) -> None:
        if self.releases and len(self.releases) != len(self.goals):
            raise LifelongError(
                f"agent {self.agent_id}: {len(self.releases)} release ticks "
                f"for {len(self.goals)} goals"
            )
        if self.corridors and len(self.corridors) != len(self.goals):
            raise LifelongError(
                f"agent {self.agent_id}: {len(self.corridors)} corridors "
                f"for {len(self.goals)} goals"
            )


@dataclass
class LifelongResult:
    """Outcome of an :class:`IteratedPlanner` run."""

    completed: bool
    paths: Tuple[Tuple[VertexId, ...], ...]
    goals_completed: int
    goals_total: int
    episodes: int
    expansions: int
    runtime_seconds: float
    engine: str
    #: Per agent (in task order), the tick at which each *completed* goal was
    #: reached — ``goal_arrivals[i][j]`` indexes into ``paths[i]``.  Consumers
    #: that replay the plan (the grid-routed simulator) use these to anchor
    #: load changes to the tick the agent actually stood on the waypoint.
    goal_arrivals: Tuple[Tuple[int, ...], ...] = ()
    #: Per agent, the tick each completed goal's leg was dispatched (the agent
    #: started pursuing it).  ``arrival - leg_start`` is the leg's true travel
    #: cost — under release pacing, raw arrivals mostly measure planned
    #: waiting, not congestion.
    leg_starts: Tuple[Tuple[int, ...], ...] = ()
    #: Why the run ended: "completed", or the explicit truncation reason
    #: ("stalled" | "episode_limit" | "time_limit").
    status: str = STATUS_COMPLETED

    @property
    def makespan(self) -> int:
        return max((len(p) - 1 for p in self.paths), default=0)

    @property
    def truncated(self) -> bool:
        """True when the run ended before every goal was served."""
        return not self.completed

    def is_collision_free(self) -> bool:
        return not find_conflicts(self.paths)

    def summary(self) -> str:
        status = "completed" if self.completed else f"TRUNCATED ({self.status})"
        return (
            f"iterated {self.engine}: {status}, {self.goals_completed}/{self.goals_total} goals, "
            f"{self.episodes} episodes, makespan {self.makespan}, "
            f"{self.expansions} expansions, {self.runtime_seconds:.2f}s"
        )


@dataclass
class IteratedPlannerOptions:
    """Engine selection and limits for the lifelong baseline."""

    engine: str = "ecbs"
    suboptimality: float = 1.5
    time_limit: Optional[float] = None
    max_episodes: int = 10_000
    per_episode_node_limit: int = 20_000
    #: ``None`` commits every episode in full (replan only when an agent
    #: reaches its goal); a positive value commits only that many steps per
    #: episode before replanning from the new positions (rolling horizon).
    commit_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise LifelongError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.commit_window is not None and self.commit_window < 1:
            raise LifelongError(
                f"commit_window must be at least 1 step, got {self.commit_window}"
            )


class IteratedPlanner:
    """Repeatedly solve one-shot MAPF instances until every goal is visited."""

    def __init__(self, floorplan: FloorplanGraph, options: Optional[IteratedPlannerOptions] = None):
        self.floorplan = floorplan
        self.options = options or IteratedPlannerOptions()

    # -- public API ----------------------------------------------------------------
    def solve(self, tasks: Sequence[LifelongTask]) -> LifelongResult:
        start_time = time.perf_counter()
        options = self.options
        tables = distance_tables(self.floorplan)
        pending: Dict[int, List[VertexId]] = {
            task.agent_id: list(task.goals) for task in tasks
        }
        release_queues: Dict[int, List[int]] = {
            task.agent_id: list(task.releases) if task.releases else [0] * len(task.goals)
            for task in tasks
        }
        corridor_queues: Dict[int, List[Optional[FrozenSet[VertexId]]]] = {
            task.agent_id: (
                list(task.corridors) if task.corridors else [None] * len(task.goals)
            )
            for task in tasks
        }
        positions: Dict[int, VertexId] = {task.agent_id: task.start for task in tasks}
        cumulative: Dict[int, List[VertexId]] = {
            task.agent_id: [task.start] for task in tasks
        }
        arrivals: Dict[int, List[int]] = {task.agent_id: [] for task in tasks}
        #: Last corridor of agents whose goal queue has drained — they keep
        #: idling inside it instead of wandering the open floorplan.
        finished_corridor: Dict[int, Optional[FrozenSet[VertexId]]] = {}
        leg_starts: Dict[int, List[int]] = {task.agent_id: [] for task in tasks}
        goals_total = sum(len(task.goals) for task in tasks)
        goals_completed = 0
        expansions = 0
        episodes = 0
        now = 0
        status = STATUS_COMPLETED

        while any(pending.values()):
            if episodes >= options.max_episodes:
                status = STATUS_EPISODE_LIMIT
                break
            if (
                options.time_limit is not None
                and time.perf_counter() - start_time > options.time_limit
            ):
                status = STATUS_TIME_LIMIT
                break

            # -- release gating: a goal is dispatched once it can no longer be
            # finished before its release tick (now + distance >= release);
            # travel takes at least the BFS distance, so a gated dispatch can
            # never arrive early.  Every agent — dispatched, gated, or done —
            # stays confined to its current leg corridor: a confined leg is
            # worthless if the agent may wander off-circuit while waiting.
            active: Dict[int, VertexId] = {}
            urgency: Dict[int, int] = {}
            corridors: Dict[int, Optional[FrozenSet[VertexId]]] = {}
            next_dispatch: Optional[int] = None
            for task in tasks:
                queue = pending[task.agent_id]
                if not queue:
                    corridors[task.agent_id] = finished_corridor.get(task.agent_id)
                    continue
                corridors[task.agent_id] = corridor_queues[task.agent_id][0]
                goal = queue[0]
                release = release_queues[task.agent_id][0]
                distance = tables.distance(positions[task.agent_id], goal)
                dispatch_at = release - max(0, distance)
                if now >= dispatch_at:
                    active[task.agent_id] = goal
                    urgency[task.agent_id] = release
                    if len(leg_starts[task.agent_id]) == len(arrivals[task.agent_id]):
                        leg_starts[task.agent_id].append(now)
                elif next_dispatch is None or dispatch_at < next_dispatch:
                    next_dispatch = dispatch_at

            if not active:
                if next_dispatch is None:
                    # Unreachable goals only; treat as a stall, not success.
                    status = STATUS_STALLED
                    break
                # Nothing is dispatchable yet: fast-forward to the next
                # release event without paying for a solver episode.
                steps = next_dispatch - now
                for task in tasks:
                    cumulative[task.agent_id].extend(
                        [positions[task.agent_id]] * steps
                    )
                now = next_dispatch
                continue

            episodes += 1
            pending_cells = {queue[0] for queue in pending.values() if queue}
            remaining = None
            if options.time_limit is not None:
                remaining = options.time_limit - (time.perf_counter() - start_time)
                if remaining <= 0:
                    status = STATUS_TIME_LIMIT
                    break
            solution, solved_active = self._solve_with_fallback(
                tasks, positions, active, urgency, corridors, pending_cells, remaining
            )
            if solution is None:
                status = STATUS_STALLED
                break
            expansions += solution.expansions
            horizon = max(len(path) for path in solution.paths)
            # Everyone commits the same number of ticks, so the stitched paths
            # stay aligned (a prefix of a collision-free episode solution is
            # itself collision-free).
            commit = (
                horizon
                if options.commit_window is None
                else min(horizon, options.commit_window + 1)
            )
            if next_dispatch is not None:
                # Stop the commit at the next release event so freshly
                # released goals are planned the tick they become urgent.
                commit = min(commit, next_dispatch - now + 1)
            for task, path in zip(tasks, solution.paths):
                agent_id = task.agent_id
                base = len(cumulative[agent_id]) - 1  # tick of the current position
                padded = list(path) + [path[-1]] * (horizon - len(path))
                committed = padded[:commit]
                cumulative[agent_id].extend(committed[1:])
                positions[agent_id] = committed[-1]
                if (
                    agent_id in solved_active
                    and pending[agent_id]
                    and committed[-1] == pending[agent_id][0]
                ):
                    pending[agent_id].pop(0)
                    release_queues[agent_id].pop(0)
                    done_corridor = corridor_queues[agent_id].pop(0)
                    if not corridor_queues[agent_id]:
                        finished_corridor[agent_id] = done_corridor
                    goals_completed += 1
                    # The goal is normally reached at the path's end (index
                    # len(path) - 1); under a commit window the agent may also
                    # happen to stand on the goal exactly at the window edge
                    # while still en route (reservation detours can revisit
                    # the goal vertex), so clamp into the committed range.
                    arrivals[agent_id].append(base + min(len(path), commit) - 1)
            now += commit - 1

        return LifelongResult(
            completed=not any(pending.values()),
            paths=tuple(tuple(cumulative[task.agent_id]) for task in tasks),
            goals_completed=goals_completed,
            goals_total=goals_total,
            episodes=episodes,
            expansions=expansions,
            runtime_seconds=time.perf_counter() - start_time,
            engine=options.engine,
            goal_arrivals=tuple(tuple(arrivals[task.agent_id]) for task in tasks),
            leg_starts=tuple(
                tuple(leg_starts[task.agent_id][: len(arrivals[task.agent_id])])
                for task in tasks
            ),
            status=status if any(pending.values()) else STATUS_COMPLETED,
        )

    # -- internals --------------------------------------------------------------------
    def _solve_with_fallback(
        self,
        tasks: Sequence[LifelongTask],
        positions: Dict[int, VertexId],
        active: Dict[int, VertexId],
        urgency: Dict[int, int],
        corridors: Dict[int, Optional[FrozenSet[VertexId]]],
        pending_cells: Set[VertexId],
        time_limit: Optional[float],
    ) -> Tuple[Optional[MAPFSolution], Set[int]]:
        """Solve the episode, demoting low-urgency agents when it is unsolvable.

        Returns ``(solution, dispatched_agents)``; demoted agents idle this
        episode (retreating off task endpoints) and are retried next episode
        from the new configuration.  Demotion order: latest release first
        (most slack), ties by agent id — the most urgent agent is held last.
        """
        problem = self._episode_problem(
            tasks, positions, active, pending_cells, corridors
        )
        solution = self._solve_episode(problem, time_limit, set(active))
        if solution is not None or len(active) <= 1:
            return solution, set(active)
        by_urgency = sorted(active, key=lambda a: (urgency.get(a, 0), a))
        for keep in range(len(by_urgency) - 1, 0, -1):
            subset = {agent_id: active[agent_id] for agent_id in by_urgency[:keep]}
            problem = self._episode_problem(
                tasks, positions, subset, pending_cells, corridors
            )
            solution = self._solve_episode(
                problem, time_limit, set(subset), node_limit=_FALLBACK_NODE_LIMIT
            )
            if solution is not None:
                return solution, set(subset)
        return None, set()

    def _episode_problem(
        self,
        tasks: Sequence[LifelongTask],
        positions: Dict[int, VertexId],
        active: Dict[int, VertexId],
        pending_cells: Set[VertexId],
        corridors: Optional[Dict[int, Optional[FrozenSet[VertexId]]]] = None,
    ) -> MAPFProblem:
        goals: Dict[int, VertexId] = {}
        taken: set = set()

        # First pass — dispatched agents head for their next goal; two agents
        # aiming at the same cell in the same episode cannot both finish
        # there, so the later one waits this episode.
        for task in tasks:
            goal = active.get(task.agent_id)
            if goal is None:
                continue
            current = positions[task.agent_id]
            if goal != current and goal in taken:
                goal = current
            taken.add(goal)
            goals[task.agent_id] = goal

        # Second pass — idle agents (no pending work, a gated release, or
        # demoted by the fallback ladder) park where they are unless they
        # block a pending goal or an assigned episode goal, in which case
        # they retreat to the nearest free cell (the usual MAPD "move idle
        # agents off task endpoints" rule).  Retreats honor the agent's
        # corridor: an idle agent stepping off-circuit would cross component
        # boundaries the traffic contracts never promised flow on.
        for task in tasks:
            if task.agent_id in goals:
                continue
            current = positions[task.agent_id]
            goal = current
            if current in pending_cells or current in taken:
                goal = self._retreat_target(
                    current,
                    pending_cells | taken,
                    (corridors or {}).get(task.agent_id),
                )
            taken.add(goal)
            goals[task.agent_id] = goal

        # Every agent is masked by its current leg corridor (waiting and
        # retreating included); solvers quietly drop a mask that does not
        # connect an agent's start to its episode goal.
        pairs = [(positions[task.agent_id], goals[task.agent_id]) for task in tasks]
        masks = [(corridors or {}).get(task.agent_id) for task in tasks]
        return MAPFProblem.from_pairs(self.floorplan, pairs, corridors=masks)

    def _retreat_target(
        self,
        start: VertexId,
        blocked: set,
        corridor: Optional[FrozenSet[VertexId]] = None,
    ) -> VertexId:
        """Nearest reachable vertex not in ``blocked`` (within the corridor).

        Must never raise: when every reachable vertex is blocked (tiny or
        saturated floorplans where all free cells are task endpoints, or a
        corridor with no spare cell), the agent waits in place — ``start`` is
        returned as the sentinel even though it is itself blocked.  The
        episode then degrades gracefully (the blocked agent parks and the
        solver reports the episode unsolvable or routes around it) instead of
        crashing the whole lifelong run.
        """
        allowed = corridor if corridor is not None and start in corridor else None
        distances = self.floorplan.bfs_distances(start)
        for vertex in sorted(distances, key=distances.get):
            if allowed is not None and vertex not in allowed:
                continue
            if vertex not in blocked:
                return vertex
        # Fully blocked: wait in place (sentinel), never raise.
        return start

    def _solve_episode(
        self,
        problem: MAPFProblem,
        time_limit: Optional[float],
        dispatched: Set[int],
        node_limit: Optional[int] = None,
    ) -> Optional[MAPFSolution]:
        options = self.options
        budget = node_limit if node_limit is not None else options.per_episode_node_limit
        if options.engine == "cbs":
            return solve_cbs(
                problem,
                CBSOptions(max_nodes=budget, time_limit=time_limit),
            )
        if options.engine == "prioritized":
            # Prioritized planning is incomplete: a low-priority agent can be
            # boxed in by earlier reservations.  Working agents plan first
            # (idle agents rarely need right-of-way), and every rotation of
            # the order is retried (deterministic, at most n cheap solves)
            # before declaring the episode unsolvable.  The rotation sweep
            # honors the episode deadline: at fleet scale n solves of an
            # unsolvable instance would otherwise blow straight through the
            # caller's time budget.
            deadline = (
                time.perf_counter() + time_limit if time_limit is not None else None
            )
            agent_ids = sorted(
                (agent.agent_id for agent in problem.agents),
                key=lambda a: (a not in dispatched, a),
            )
            for shift in range(max(1, len(agent_ids))):
                if deadline is not None and shift and time.perf_counter() > deadline:
                    return None
                order = agent_ids[shift:] + agent_ids[:shift]
                solution = solve_prioritized(problem, order=order)
                if solution is not None:
                    return solution
            return None
        return solve_ecbs(
            problem,
            ECBSOptions(
                suboptimality=options.suboptimality,
                max_nodes=budget,
                time_limit=time_limit,
            ),
        )


# ---------------------------------------------------------------------------
# bridging from co-design plans
# ---------------------------------------------------------------------------

def goal_sequences_from_plan(plan: Plan, max_goals_per_agent: Optional[int] = None) -> List[LifelongTask]:
    """Extract each agent's shelf/station visit sequence from a realized plan.

    A goal is recorded at every vertex where the agent's carried product
    changes (a pickup or a drop-off) — exactly the "same sequence of shelves
    and stations" the paper hands to its Iterated EECBS baseline.
    ``max_goals_per_agent`` truncates the sequences so scaled-down baseline
    comparisons stay tractable.
    """
    tasks: List[LifelongTask] = []
    for agent in range(plan.num_agents):
        carrying = plan.carrying[agent]
        positions = plan.positions[agent]
        goals: List[VertexId] = []
        for t in range(plan.horizon - 1):
            if carrying[t + 1] != carrying[t]:
                vertex = int(positions[t])
                if not goals or goals[-1] != vertex:
                    goals.append(vertex)
        if max_goals_per_agent is not None:
            goals = goals[:max_goals_per_agent]
        tasks.append(
            LifelongTask(agent_id=agent, start=int(positions[0]), goals=tuple(goals))
        )
    return tasks
