"""Multi-agent path finding (MAPF) problem definitions.

The paper benchmarks its methodology against Iterated EECBS, a search-based
lifelong multi-agent path planner.  This package provides the baseline stack
from scratch: single-agent space-time A*, prioritized planning, Conflict-Based
Search (CBS), bounded-suboptimal ECBS (the focal-search family EECBS belongs
to), and a lifelong/MAPD wrapper that strings together per-leg searches the
way the paper's baseline experiment does.

This module holds the shared problem/solution types:

* :class:`MAPFProblem` — a set of agents with start and goal vertices on a
  warehouse floorplan graph;
* :class:`MAPFSolution` — one path per agent plus cost metrics;
* conflict detection used by the validators and by CBS/ECBS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..warehouse.floorplan import FloorplanGraph, VertexId

Path = Tuple[VertexId, ...]


class MAPFError(ValueError):
    """Raised for malformed MAPF problems or solutions."""


@dataclass(frozen=True)
class MAPFAgent:
    """One agent: a start vertex and a goal vertex.

    ``corridor`` optionally confines the agent's motion to an allowed-vertex
    set (solvers treat vertices outside it as walls) — used by the grid
    router to keep each leg on the traffic system's designated circuit.
    Solvers quietly drop the corridor when it does not connect the agent's
    start to its goal.
    """

    agent_id: int
    start: VertexId
    goal: VertexId
    corridor: Optional[FrozenSet[VertexId]] = None


@dataclass
class MAPFProblem:
    """A one-shot MAPF instance on a floorplan graph."""

    floorplan: FloorplanGraph
    agents: Tuple[MAPFAgent, ...]

    def __post_init__(self) -> None:
        seen_starts: Dict[VertexId, int] = {}
        for agent in self.agents:
            for vertex, label in ((agent.start, "start"), (agent.goal, "goal")):
                if not 0 <= vertex < self.floorplan.num_vertices:
                    raise MAPFError(
                        f"agent {agent.agent_id}: {label} vertex {vertex} outside the floorplan"
                    )
            if agent.start in seen_starts:
                raise MAPFError(
                    f"agents {seen_starts[agent.start]} and {agent.agent_id} share start "
                    f"vertex {agent.start}"
                )
            seen_starts[agent.start] = agent.agent_id

    @staticmethod
    def from_pairs(
        floorplan: FloorplanGraph,
        pairs: Sequence[Tuple[VertexId, VertexId]],
        corridors: Optional[Sequence[Optional[FrozenSet[VertexId]]]] = None,
    ) -> "MAPFProblem":
        agents = tuple(
            MAPFAgent(
                agent_id=i,
                start=start,
                goal=goal,
                corridor=corridors[i] if corridors is not None else None,
            )
            for i, (start, goal) in enumerate(pairs)
        )
        return MAPFProblem(floorplan=floorplan, agents=agents)

    @property
    def num_agents(self) -> int:
        return len(self.agents)


@dataclass(frozen=True)
class Conflict:
    """A vertex or edge (swap) conflict between two agents at a timestep."""

    kind: str  # "vertex" | "edge"
    agent_a: int
    agent_b: int
    timestep: int
    vertex: VertexId
    other_vertex: Optional[VertexId] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "vertex":
            return (
                f"vertex conflict: agents {self.agent_a}/{self.agent_b} at "
                f"{self.vertex} (t={self.timestep})"
            )
        return (
            f"edge conflict: agents {self.agent_a}/{self.agent_b} swap "
            f"{self.vertex}<->{self.other_vertex} (t={self.timestep})"
        )


def position_at(path: Sequence[VertexId], timestep: int) -> VertexId:
    """Position along a path at a timestep; agents wait at their goal forever."""
    if not path:
        raise MAPFError("empty path")
    if timestep < len(path):
        return path[timestep]
    return path[-1]


def find_conflicts(paths: Sequence[Sequence[VertexId]]) -> List[Conflict]:
    """All vertex and edge conflicts between a set of paths."""
    conflicts: List[Conflict] = []
    horizon = max((len(path) for path in paths), default=0)
    for t in range(horizon):
        occupied: Dict[VertexId, int] = {}
        for agent, path in enumerate(paths):
            vertex = position_at(path, t)
            if vertex in occupied:
                conflicts.append(
                    Conflict("vertex", occupied[vertex], agent, t, vertex)
                )
            else:
                occupied[vertex] = agent
        if t == 0:
            continue
        moves: Dict[Tuple[VertexId, VertexId], int] = {}
        for agent, path in enumerate(paths):
            before, after = position_at(path, t - 1), position_at(path, t)
            if before != after:
                moves[(before, after)] = agent
        for (before, after), agent in moves.items():
            other = moves.get((after, before))
            if other is not None and other != agent and agent < other:
                conflicts.append(Conflict("edge", agent, other, t, before, after))
    return conflicts


def first_conflict(paths: Sequence[Sequence[VertexId]]) -> Optional[Conflict]:
    """The earliest conflict, or None when the paths are collision-free.

    Scans timesteps in ascending order and returns at the first hit (vertex
    conflicts before edge conflicts within a tick, matching
    :func:`find_conflicts` order), so conflict-free suffixes are never paid
    for — CBS/ECBS call this once per constraint-tree node.
    """
    horizon = max((len(path) for path in paths), default=0)
    positions = [path[0] if path else None for path in paths]
    for t in range(horizon):
        occupied: Dict[VertexId, int] = {}
        previous = positions
        positions = [position_at(path, t) for path in paths]
        for agent, vertex in enumerate(positions):
            if vertex in occupied:
                return Conflict("vertex", occupied[vertex], agent, t, vertex)
            occupied[vertex] = agent
        if t == 0:
            continue
        moves: Dict[Tuple[VertexId, VertexId], int] = {}
        for agent, (before, after) in enumerate(zip(previous, positions)):
            if before != after:
                moves[(before, after)] = agent
        for (before, after), agent in moves.items():
            other = moves.get((after, before))
            if other is not None and other != agent and agent < other:
                return Conflict("edge", agent, other, t, before, after)
    return None


def count_conflicts(paths: Sequence[Sequence[VertexId]]) -> int:
    """Total number of vertex/edge conflicts between the paths.

    Cheaper than ``len(find_conflicts(paths))``: counts collisions from
    per-tick occupancy without materializing :class:`Conflict` objects.  Used
    by the ECBS high level to order its focal list.
    """
    total = 0
    horizon = max((len(path) for path in paths), default=0)
    positions = [path[0] if path else None for path in paths]
    for t in range(horizon):
        previous = positions
        positions = [position_at(path, t) for path in paths]
        counts: Dict[VertexId, int] = {}
        for vertex in positions:
            counts[vertex] = counts.get(vertex, 0) + 1
        for n in counts.values():
            if n > 1:
                total += n - 1
        if t == 0:
            continue
        moves: Dict[Tuple[VertexId, VertexId], int] = {}
        for before, after in zip(previous, positions):
            if before != after:
                moves[(before, after)] = moves.get((before, after), 0) + 1
        for (before, after), n in moves.items():
            if before < after:
                total += n * moves.get((after, before), 0)
    return total


@dataclass
class MAPFSolution:
    """One path per agent (indexed consistently with the problem's agents)."""

    problem: MAPFProblem
    paths: Tuple[Path, ...]
    expansions: int = 0
    runtime_seconds: float = 0.0
    solver: str = ""
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.paths) != self.problem.num_agents:
            raise MAPFError(
                f"solution has {len(self.paths)} paths for {self.problem.num_agents} agents"
            )

    # -- costs -------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        return max((len(path) - 1 for path in self.paths), default=0)

    @property
    def sum_of_costs(self) -> int:
        return sum(len(path) - 1 for path in self.paths)

    # -- validity -----------------------------------------------------------------
    def conflicts(self) -> List[Conflict]:
        return find_conflicts(self.paths)

    def is_valid(self) -> bool:
        """Paths start/end correctly, respect adjacency, and never conflict."""
        floorplan = self.problem.floorplan
        for agent, path in zip(self.problem.agents, self.paths):
            if not path or path[0] != agent.start or path[-1] != agent.goal:
                return False
            for u, v in zip(path, path[1:]):
                if u != v and not floorplan.are_adjacent(u, v):
                    return False
        return not self.conflicts()

    def summary(self) -> str:
        return (
            f"{self.solver or 'mapf'} solution: {self.problem.num_agents} agents, "
            f"makespan {self.makespan}, sum-of-costs {self.sum_of_costs}, "
            f"{self.expansions} expansions, {self.runtime_seconds:.3f}s"
        )
