"""Space-time constraints and reservation tables for MAPF search.

CBS/ECBS resolve conflicts by branching on *constraints* ("agent a may not be
at vertex v at time t" / "may not traverse edge (u, v) at time t"); prioritized
planning and the lifelong planner use a *reservation table* holding the
space-time cells already claimed by other agents.  Both are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..warehouse.floorplan import VertexId


@dataclass(frozen=True)
class Constraint:
    """A single space-time prohibition for one agent.

    ``edge_from`` is ``None`` for vertex constraints; for edge constraints the
    agent is forbidden from moving ``edge_from -> vertex`` arriving at
    ``timestep``.
    """

    agent: int
    vertex: VertexId
    timestep: int
    edge_from: Optional[VertexId] = None

    @property
    def is_edge_constraint(self) -> bool:
        return self.edge_from is not None


class ConstraintSet:
    """Constraints indexed for O(1) lookup during low-level search."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._vertex: Dict[int, Set[Tuple[VertexId, int]]] = {}
        self._edge: Dict[int, Set[Tuple[VertexId, VertexId, int]]] = {}
        self._latest: Dict[int, int] = {}
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        agent = constraint.agent
        if constraint.is_edge_constraint:
            self._edge.setdefault(agent, set()).add(
                (constraint.edge_from, constraint.vertex, constraint.timestep)
            )
        else:
            self._vertex.setdefault(agent, set()).add(
                (constraint.vertex, constraint.timestep)
            )
        self._latest[agent] = max(self._latest.get(agent, 0), constraint.timestep)

    def extended(self, constraint: Constraint) -> "ConstraintSet":
        """A copy of this set with one extra constraint (used by CBS branching)."""
        clone = ConstraintSet()
        clone._vertex = {agent: set(items) for agent, items in self._vertex.items()}
        clone._edge = {agent: set(items) for agent, items in self._edge.items()}
        clone._latest = dict(self._latest)
        clone.add(constraint)
        return clone

    def violates_vertex(self, agent: int, vertex: VertexId, timestep: int) -> bool:
        return (vertex, timestep) in self._vertex.get(agent, ())

    def violates_edge(
        self, agent: int, from_vertex: VertexId, to_vertex: VertexId, timestep: int
    ) -> bool:
        return (from_vertex, to_vertex, timestep) in self._edge.get(agent, ())

    def latest_constraint_time(self, agent: int) -> int:
        """The latest timestep any constraint on ``agent`` refers to.

        The low-level search must keep planning at least until this time, so
        that "goal reached" cannot dodge a later constraint at the goal vertex.
        """
        return self._latest.get(agent, 0)


@dataclass
class ReservationTable:
    """Space-time reservations used by prioritized / lifelong planning.

    ``vertex_reservations[(v, t)]`` marks vertex ``v`` occupied at time ``t``;
    ``edge_reservations[(u, v, t)]`` marks the move ``u -> v`` arriving at
    ``t`` as taken (so the opposite move would be a swap).  ``parked[(v)]``
    records agents that sit on ``v`` forever from a given time (agents resting
    at their goal).
    """

    vertex_reservations: Set[Tuple[VertexId, int]] = field(default_factory=set)
    edge_reservations: Set[Tuple[VertexId, VertexId, int]] = field(default_factory=set)
    parked: Dict[VertexId, int] = field(default_factory=dict)

    def reserve_path(self, path: Sequence[VertexId], park_at_goal: bool = True) -> None:
        """Reserve every space-time cell of a path (and optionally its goal forever)."""
        for t, vertex in enumerate(path):
            self.vertex_reservations.add((vertex, t))
            if t:
                self.edge_reservations.add((path[t - 1], vertex, t))
        if park_at_goal and path:
            goal = path[-1]
            previous = self.parked.get(goal)
            parked_from = len(path) - 1
            if previous is None or parked_from < previous:
                self.parked[goal] = parked_from

    def is_vertex_free(self, vertex: VertexId, timestep: int) -> bool:
        if (vertex, timestep) in self.vertex_reservations:
            return False
        parked_from = self.parked.get(vertex)
        return parked_from is None or timestep < parked_from

    def latest_vertex_time(self, vertex: VertexId) -> int:
        """The last timestep at which ``vertex`` is reserved (-1 when never).

        Used to resolve *target conflicts*: an agent may only finish (and then
        rest forever) at a vertex after every transiting reservation through it
        has passed.
        """
        latest = -1
        for reserved_vertex, timestep in self.vertex_reservations:
            if reserved_vertex == vertex and timestep > latest:
                latest = timestep
        return latest

    def is_move_free(self, from_vertex: VertexId, to_vertex: VertexId, timestep: int) -> bool:
        """Whether moving ``from -> to`` arriving at ``timestep`` is allowed."""
        if not self.is_vertex_free(to_vertex, timestep):
            return False
        # A swap happens when the opposite move is reserved for the same step.
        return (to_vertex, from_vertex, timestep) not in self.edge_reservations

    def latest_reserved_time(self) -> int:
        latest = 0
        for _, t in self.vertex_reservations:
            latest = max(latest, t)
        return latest
