"""Space-time constraints and reservation tables for MAPF search.

CBS/ECBS resolve conflicts by branching on *constraints* ("agent a may not be
at vertex v at time t" / "may not traverse edge (u, v) at time t"); prioritized
planning and the lifelong planner use a *reservation table* holding the
space-time cells already claimed by other agents.  Both are provided here.

Beyond the membership tests the seed shipped, both structures expose the
*interval views* the SIPP low level needs (per-vertex sorted blocked-time
lists), maintain incremental per-vertex indices so "latest time this vertex is
touched" is O(1) instead of a scan over every reservation, and — for
:class:`ConstraintSet` — a canonical :meth:`~ConstraintSet.signature` that
CBS/ECBS use to dedupe constraint-tree nodes reached via different branch
orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..warehouse.floorplan import VertexId


@dataclass(frozen=True)
class Constraint:
    """A single space-time prohibition for one agent.

    ``edge_from`` is ``None`` for vertex constraints; for edge constraints the
    agent is forbidden from moving ``edge_from -> vertex`` arriving at
    ``timestep``.
    """

    agent: int
    vertex: VertexId
    timestep: int
    edge_from: Optional[VertexId] = None

    @property
    def is_edge_constraint(self) -> bool:
        return self.edge_from is not None


#: Canonical hashable form of one constraint (``edge_from`` is -1 for vertex
#: constraints so the tuple stays homogeneous and sortable).
ConstraintKey = Tuple[int, int, VertexId, int]


class ConstraintSet:
    """Constraints indexed for O(1) lookup during low-level search."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._vertex: Dict[int, Set[Tuple[VertexId, int]]] = {}
        self._edge: Dict[int, Set[Tuple[VertexId, VertexId, int]]] = {}
        self._latest: Dict[int, int] = {}
        self._blocked_cache: Dict[int, Dict[VertexId, Tuple[int, ...]]] = {}
        self._signature: Optional[FrozenSet[ConstraintKey]] = None
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        agent = constraint.agent
        if constraint.is_edge_constraint:
            self._edge.setdefault(agent, set()).add(
                (constraint.edge_from, constraint.vertex, constraint.timestep)
            )
        else:
            self._vertex.setdefault(agent, set()).add(
                (constraint.vertex, constraint.timestep)
            )
        self._latest[agent] = max(self._latest.get(agent, 0), constraint.timestep)
        self._blocked_cache.pop(agent, None)
        self._signature = None

    def extended(self, constraint: Constraint) -> "ConstraintSet":
        """A copy of this set with one extra constraint (used by CBS branching)."""
        clone = ConstraintSet()
        clone._vertex = {agent: set(items) for agent, items in self._vertex.items()}
        clone._edge = {agent: set(items) for agent, items in self._edge.items()}
        clone._latest = dict(self._latest)
        clone.add(constraint)
        return clone

    def violates_vertex(self, agent: int, vertex: VertexId, timestep: int) -> bool:
        return (vertex, timestep) in self._vertex.get(agent, ())

    def violates_edge(
        self, agent: int, from_vertex: VertexId, to_vertex: VertexId, timestep: int
    ) -> bool:
        return (from_vertex, to_vertex, timestep) in self._edge.get(agent, ())

    def latest_constraint_time(self, agent: int) -> int:
        """The latest timestep any constraint on ``agent`` refers to.

        The low-level search must keep planning at least until this time, so
        that "goal reached" cannot dodge a later constraint at the goal vertex.
        """
        return self._latest.get(agent, 0)

    def vertex_blocked_times(self, agent: int) -> Dict[VertexId, Tuple[int, ...]]:
        """Per-vertex sorted blocked timesteps for ``agent`` (SIPP intervals).

        Cached per agent and invalidated by :meth:`add`, so the SIPP low level
        builds each agent's safe-interval index once per CT node rather than
        once per expansion.
        """
        cached = self._blocked_cache.get(agent)
        if cached is None:
            by_vertex: Dict[VertexId, List[int]] = {}
            for vertex, timestep in self._vertex.get(agent, ()):
                by_vertex.setdefault(vertex, []).append(timestep)
            cached = {
                vertex: tuple(sorted(times)) for vertex, times in by_vertex.items()
            }
            self._blocked_cache[agent] = cached
        return cached

    def latest_vertex_constraint(self, agent: int, vertex: VertexId) -> int:
        """Latest constrained timestep on ``vertex`` for ``agent`` (-1 if none)."""
        times = self.vertex_blocked_times(agent).get(vertex)
        return times[-1] if times else -1

    def edge_constraints(self, agent: int) -> Set[Tuple[VertexId, VertexId, int]]:
        """The raw edge-constraint triples for ``agent`` (read-only use)."""
        return self._edge.get(agent, set())

    def signature(self) -> FrozenSet[ConstraintKey]:
        """Canonical hashable identity of this constraint set.

        Two CT nodes whose constraint sets compare equal here have identical
        low-level search problems for every agent — regardless of the branch
        order that produced them — so CBS/ECBS prune the duplicate before
        paying for its replans.
        """
        if self._signature is None:
            keys: List[ConstraintKey] = []
            for agent, items in self._vertex.items():
                keys.extend((agent, -1, vertex, t) for vertex, t in items)
            for agent, items in self._edge.items():
                keys.extend((agent, u, v, t) for u, v, t in items)
            self._signature = frozenset(keys)
        return self._signature


@dataclass
class ReservationTable:
    """Space-time reservations used by prioritized / lifelong planning.

    ``vertex_reservations[(v, t)]`` marks vertex ``v`` occupied at time ``t``;
    ``edge_reservations[(u, v, t)]`` marks the move ``u -> v`` arriving at
    ``t`` as taken (so the opposite move would be a swap).  ``parked[(v)]``
    records agents that sit on ``v`` forever from a given time (agents resting
    at their goal).

    Per-vertex indices (`blocked times`, latest touch) are maintained
    incrementally on :meth:`reserve_path`, so the SIPP low level reads sorted
    interval boundaries and the target-conflict rule answers "latest transit
    through the goal" in O(1).
    """

    vertex_reservations: Set[Tuple[VertexId, int]] = field(default_factory=set)
    edge_reservations: Set[Tuple[VertexId, VertexId, int]] = field(default_factory=set)
    parked: Dict[VertexId, int] = field(default_factory=dict)
    _vertex_times: Dict[VertexId, Set[int]] = field(default_factory=dict, repr=False)
    _vertex_latest: Dict[VertexId, int] = field(default_factory=dict, repr=False)
    _latest: int = field(default=0, repr=False)
    _blocked_cache: Dict[VertexId, Tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )

    def reserve_path(self, path: Sequence[VertexId], park_at_goal: bool = True) -> None:
        """Reserve every space-time cell of a path (and optionally its goal forever)."""
        for t, vertex in enumerate(path):
            cell = (vertex, t)
            if cell not in self.vertex_reservations:
                self.vertex_reservations.add(cell)
                self._vertex_times.setdefault(vertex, set()).add(t)
                if t > self._vertex_latest.get(vertex, -1):
                    self._vertex_latest[vertex] = t
                if t > self._latest:
                    self._latest = t
                self._blocked_cache.pop(vertex, None)
            if t:
                self.edge_reservations.add((path[t - 1], vertex, t))
        if park_at_goal and path:
            goal = path[-1]
            previous = self.parked.get(goal)
            parked_from = len(path) - 1
            if previous is None or parked_from < previous:
                self.parked[goal] = parked_from

    def is_vertex_free(self, vertex: VertexId, timestep: int) -> bool:
        if (vertex, timestep) in self.vertex_reservations:
            return False
        parked_from = self.parked.get(vertex)
        return parked_from is None or timestep < parked_from

    def blocked_times(self, vertex: VertexId) -> Tuple[int, ...]:
        """Sorted timesteps at which ``vertex`` is reserved by a transit.

        The parked tail is *not* included — callers read ``parked[vertex]``
        directly, because a parked vertex is blocked on an unbounded interval
        rather than at discrete ticks.
        """
        cached = self._blocked_cache.get(vertex)
        if cached is None:
            cached = tuple(sorted(self._vertex_times.get(vertex, ())))
            self._blocked_cache[vertex] = cached
        return cached

    def parked_from(self, vertex: VertexId) -> Optional[int]:
        """First timestep of the unbounded parked interval at ``vertex``."""
        return self.parked.get(vertex)

    def latest_vertex_time(self, vertex: VertexId) -> int:
        """The last timestep at which ``vertex`` is reserved (-1 when never).

        Used to resolve *target conflicts*: an agent may only finish (and then
        rest forever) at a vertex after every transiting reservation through it
        has passed.
        """
        return self._vertex_latest.get(vertex, -1)

    def is_move_free(self, from_vertex: VertexId, to_vertex: VertexId, timestep: int) -> bool:
        """Whether moving ``from -> to`` arriving at ``timestep`` is allowed."""
        if not self.is_vertex_free(to_vertex, timestep):
            return False
        # A swap happens when the opposite move is reserved for the same step.
        return (to_vertex, from_vertex, timestep) not in self.edge_reservations

    def latest_reserved_time(self) -> int:
        return self._latest
