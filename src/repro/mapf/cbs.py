"""Conflict-Based Search (CBS) — optimal MAPF.

CBS searches a binary *constraint tree*: the root plans every agent
independently; whenever two paths conflict, the node is split into two
children, each forbidding one of the agents from the conflicting vertex/edge
at that timestep, and the affected agent is re-planned.  The tree is explored
in order of solution cost, so the first conflict-free node is optimal
(sum-of-costs).

This is the optimal anchor of the baseline family; the paper's baseline
(EECBS) is its bounded-suboptimal descendant — see :mod:`repro.mapf.ecbs`.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import span
from .astar import SearchStats, space_time_astar
from .constraints import Constraint, ConstraintSet
from .heuristics import agent_table, distance_tables
from .problem import Conflict, MAPFProblem, MAPFSolution, Path, first_conflict


@dataclass
class CBSOptions:
    """Limits for the constraint-tree search."""

    max_nodes: int = 20_000
    time_limit: Optional[float] = None


@dataclass(order=True)
class _CTNode:
    cost: int
    order: int
    constraints: ConstraintSet = field(compare=False)
    paths: Tuple[Path, ...] = field(compare=False)


def _branch_constraints(conflict: Conflict) -> List[Constraint]:
    """The two constraints CBS branches on for a conflict."""
    if conflict.kind == "vertex":
        return [
            Constraint(conflict.agent_a, conflict.vertex, conflict.timestep),
            Constraint(conflict.agent_b, conflict.vertex, conflict.timestep),
        ]
    # Edge (swap) conflict: a moved vertex->other, b moved other->vertex.
    return [
        Constraint(
            conflict.agent_a,
            conflict.other_vertex,
            conflict.timestep,
            edge_from=conflict.vertex,
        ),
        Constraint(
            conflict.agent_b,
            conflict.vertex,
            conflict.timestep,
            edge_from=conflict.other_vertex,
        ),
    ]


def solve_cbs(
    problem: MAPFProblem, options: Optional[CBSOptions] = None
) -> Optional[MAPFSolution]:
    """Optimal CBS; returns None on failure (unsolvable or limits exceeded)."""
    options = options or CBSOptions()
    start_time = time.perf_counter()
    floorplan = problem.floorplan
    stats = SearchStats()
    expanded = 0
    generated = 1  # the root
    deduped = 0
    # Phase timers are placed at CT-node granularity (not inside the low-level
    # expansion loop) so the instrumented search stays within the overhead
    # budget while still splitting the hot path into its four phases.
    with span("mapf.cbs", agents=len(problem.agents)) as sp:
        try:
            with sp.timer("heuristic"):
                tables = distance_tables(floorplan)
                heuristics = {
                    agent.agent_id: agent_table(tables, agent)
                    for agent in problem.agents
                }

            def plan_agent(agent_id: int, constraints: ConstraintSet) -> Optional[Path]:
                agent = problem.agents[agent_id]
                return space_time_astar(
                    floorplan,
                    agent.start,
                    agent.goal,
                    agent=agent_id,
                    constraints=constraints,
                    heuristic=heuristics[agent_id],
                    stats=stats,
                )

            root_constraints = ConstraintSet()
            root_paths: List[Path] = []
            for agent in problem.agents:
                with sp.timer("low_level"):
                    path = plan_agent(agent.agent_id, root_constraints)
                if path is None:
                    sp.set_attr("outcome", "root_unsolvable")
                    return None
                root_paths.append(path)

            counter = itertools.count()
            with sp.timer("ct_management"):
                root = _CTNode(
                    cost=sum(len(p) - 1 for p in root_paths),
                    order=next(counter),
                    constraints=root_constraints,
                    paths=tuple(root_paths),
                )
                open_heap = [root]
                # Two branches taken in different orders produce identical
                # constraint sets; replanning such a duplicate CT node repeats
                # the exact low-level searches of its twin, so dedupe on the
                # canonical constraint signature before paying for them.
                seen_signatures = {root_constraints.signature()}

            while open_heap:
                if expanded >= options.max_nodes:
                    sp.set_attr("outcome", "node_limit")
                    return None
                if (
                    options.time_limit is not None
                    and time.perf_counter() - start_time > options.time_limit
                ):
                    sp.set_attr("outcome", "time_limit")
                    return None
                with sp.timer("ct_management"):
                    node = heapq.heappop(open_heap)
                expanded += 1
                with sp.timer("conflict_detection"):
                    conflict = first_conflict(node.paths)
                sp.add("conflict_checks")
                if conflict is None:
                    sp.set_attr("outcome", "solved")
                    return MAPFSolution(
                        problem=problem,
                        paths=node.paths,
                        expansions=stats.expansions,
                        runtime_seconds=time.perf_counter() - start_time,
                        solver="cbs",
                        metadata={"ct_nodes": float(expanded)},
                    )
                for constraint in _branch_constraints(conflict):
                    child_constraints = node.constraints.extended(constraint)
                    with sp.timer("ct_management"):
                        signature = child_constraints.signature()
                        if signature in seen_signatures:
                            deduped += 1
                            continue
                        seen_signatures.add(signature)
                    with sp.timer("low_level"):
                        new_path = plan_agent(constraint.agent, child_constraints)
                    if new_path is None:
                        continue
                    child_paths = list(node.paths)
                    child_paths[constraint.agent] = new_path
                    with sp.timer("ct_management"):
                        heapq.heappush(
                            open_heap,
                            _CTNode(
                                cost=sum(len(p) - 1 for p in child_paths),
                                order=next(counter),
                                constraints=child_constraints,
                                paths=tuple(child_paths),
                            ),
                        )
                    generated += 1
            sp.set_attr("outcome", "exhausted")
            return None
        finally:
            sp.add("ct_nodes_expanded", expanded)
            sp.add("ct_nodes_generated", generated)
            sp.add("ct_nodes_deduped", deduped)
            sp.add("low_level_expansions", stats.expansions)
            sp.add("low_level_generated", stats.generated)
