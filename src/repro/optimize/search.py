"""Local-search strategies over a :class:`~repro.optimize.space.DesignSpace`.

An :class:`Optimizer` owns only the *decision rule* of the search — how many
neighbors to propose per step and whether to move to a candidate given its
score.  Proposal generation (the design space), scoring (the objective), and
execution (the evaluator) live elsewhere; the campaign loop in
:mod:`repro.optimize.campaign` wires the four together.

Determinism contract: an optimizer may consume the shared ``random.Random``
stream **only** inside :meth:`accept`, and only on the code path it would
also take during a resume-replay (annealing draws the Metropolis uniform
only when the candidate is *not* an improvement).  Everything else must be a
pure function of ``(scores, step)`` so a replayed campaign reproduces the
trajectory bit for bit.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Type

from .space import OptimizeError


class Optimizer:
    """Base decision rule: greedy strict-improvement, one proposal per step."""

    name = "optimizer"

    def proposals_per_step(self) -> int:
        """How many neighbors the campaign should evaluate per step."""
        return 1

    def temperature(self, step: int) -> float:
        """The step's temperature (0.0 for memoryless strategies)."""
        return 0.0

    def accept(
        self,
        current_score: float,
        candidate_score: float,
        step: int,
        rng: random.Random,
    ) -> bool:
        """Whether the search moves from the current design to the candidate."""
        return candidate_score > current_score

    def describe(self) -> Dict:
        return {"name": self.name}


class HillClimbing(Optimizer):
    """Batch steepest-ascent: evaluate a batch, move to the best if it improves.

    The batch exists for throughput, not for the decision rule — all
    ``batch_size`` neighbors fan out over the evaluator (pool workers or
    serve replicas) at once, then only the argmax is considered.  Accepting
    strictly better candidates only means the climb is monotone and needs no
    randomness at decision time.
    """

    name = "hill"

    def __init__(self, batch_size: int = 4):
        if batch_size < 1:
            raise OptimizeError(f"batch_size must be at least 1 (got {batch_size})")
        self.batch_size = batch_size

    def proposals_per_step(self) -> int:
        return self.batch_size

    def describe(self) -> Dict:
        return {"name": self.name, "batch_size": self.batch_size}


class SimulatedAnnealing(Optimizer):
    """Metropolis acceptance under a geometric cooling schedule.

    Worsening moves are accepted with probability ``exp((s' - s) / T)`` where
    ``T = initial_temperature * cooling**step`` — early steps roam across
    plateaus and out of local optima, late steps converge greedily.  The
    uniform draw is consumed *only* for non-improving candidates, so a
    resume-replay (which re-runs this method with logged scores) consumes the
    identical rng stream.
    """

    name = "anneal"

    def __init__(self, initial_temperature: float = 0.02, cooling: float = 0.92):
        if initial_temperature <= 0:
            raise OptimizeError(
                f"initial_temperature must be positive (got {initial_temperature:g})"
            )
        if not 0.0 < cooling <= 1.0:
            raise OptimizeError(f"cooling must be in (0, 1] (got {cooling:g})")
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def temperature(self, step: int) -> float:
        return self.initial_temperature * (self.cooling ** step)

    def accept(
        self,
        current_score: float,
        candidate_score: float,
        step: int,
        rng: random.Random,
    ) -> bool:
        if candidate_score > current_score:
            return True
        temperature = self.temperature(step)
        if temperature <= 0.0:
            return False
        # exp() of a hugely negative delta (e.g. a WORST_SCORE candidate)
        # underflows to 0.0 — the finite-penalty contract keeps this safe.
        try:
            probability = math.exp((candidate_score - current_score) / temperature)
        except OverflowError:
            probability = 0.0
        return rng.random() < probability

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "initial_temperature": self.initial_temperature,
            "cooling": self.cooling,
        }


#: Named strategies reachable from ``repro optimize --optimizer``.
OPTIMIZERS: Dict[str, Type[Optimizer]] = {
    "hill": HillClimbing,
    "anneal": SimulatedAnnealing,
}


def make_optimizer(name: str, **options) -> Optimizer:
    """Build a named optimizer, passing through its keyword options."""
    if name not in OPTIMIZERS:
        raise OptimizeError(
            f"unknown optimizer {name!r}; available: {', '.join(sorted(OPTIMIZERS))}"
        )
    return OPTIMIZERS[name](**options)
