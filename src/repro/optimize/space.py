"""Declarative design spaces over :class:`~repro.experiments.scenario.ScenarioSpec`.

A :class:`DesignSpace` is a base scenario plus a tuple of *knobs* — the spec
fields the optimizer may move and the moves it may make:

* :class:`PermutationKnob` — the slot-to-product assignment
  (``product_order``); a neighbor swaps two positions of the permutation.
* :class:`IntKnob` — a bounded integer layout dimension (``shelf_bands``,
  ``shelf_columns``, ``chute_spacing``, ``num_stations``, ``station_cells``,
  ...); a neighbor steps the value up or down within its bounds.

Neighbor generation is *seeded* (every draw comes from the caller's
``random.Random``) and *validity filtered*: candidates that violate the map
generators' design rules (``ScenarioSpec.is_valid()``) are redrawn, so the
search loop only ever sees buildable designs.  The rng consumption is a pure
function of the current spec and the draw sequence — the property the
campaign's resume-replay relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple, Union

from ..experiments.scenario import ScenarioSpec


class OptimizeError(ValueError):
    """Raised for structurally invalid optimizer configurations."""


@dataclass(frozen=True)
class IntKnob:
    """A bounded integer spec field; a move steps it by ``step`` within bounds."""

    field: str
    minimum: int
    maximum: int
    step: int = 1

    def __post_init__(self) -> None:
        known = {f.name for f in fields(ScenarioSpec)}
        if self.field not in known:
            raise OptimizeError(
                f"unknown scenario field {self.field!r}; expected among {sorted(known)}"
            )
        if self.minimum > self.maximum:
            raise OptimizeError(
                f"{self.field}: minimum {self.minimum} exceeds maximum {self.maximum}"
            )
        if self.step < 1:
            raise OptimizeError(f"{self.field}: step must be at least 1 (got {self.step})")

    def perturb(self, spec: ScenarioSpec, rng: random.Random) -> Optional[ScenarioSpec]:
        """One step up or down (drawn from ``rng``), or ``None`` when pinned."""
        current = int(getattr(spec, self.field))
        moves = [
            value
            for value in (current - self.step, current + self.step)
            if self.minimum <= value <= self.maximum and value != current
        ]
        if not moves:
            return None
        return spec.with_updates(**{self.field: rng.choice(moves)})

    def describe(self) -> Dict:
        return {
            "kind": "int",
            "field": self.field,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "step": self.step,
        }


@dataclass(frozen=True)
class PermutationKnob:
    """The slotting permutation (``product_order``); a move swaps two slots.

    An empty ``product_order`` on the spec means the identity order — the
    first move materializes the identity permutation of ``1..num_products``
    and swaps inside it, so the baseline keeps its historical scenario_id
    while every neighbor is explicitly slotted.
    """

    field: str = "product_order"

    def perturb(self, spec: ScenarioSpec, rng: random.Random) -> Optional[ScenarioSpec]:
        order = list(getattr(spec, self.field)) or list(range(1, spec.num_products + 1))
        if len(order) < 2:
            return None
        i, j = rng.sample(range(len(order)), 2)
        order[i], order[j] = order[j], order[i]
        return spec.with_updates(**{self.field: tuple(order)})

    def describe(self) -> Dict:
        return {"kind": "permutation", "field": self.field}


Knob = Union[IntKnob, PermutationKnob]


@dataclass(frozen=True)
class DesignSpace:
    """A base scenario plus the knobs a local search may move."""

    base: ScenarioSpec
    knobs: Tuple[Knob, ...]
    #: Draws attempted before giving up on finding a (distinct, valid) neighbor.
    max_draws: int = 64

    def __post_init__(self) -> None:
        if not self.knobs:
            raise OptimizeError("a design space needs at least one knob")
        if not isinstance(self.knobs, tuple):
            object.__setattr__(self, "knobs", tuple(self.knobs))
        seen = set()
        for knob in self.knobs:
            if knob.field in seen:
                raise OptimizeError(f"duplicate knob for field {knob.field!r}")
            seen.add(knob.field)
        self.base.validate()

    def baseline(self) -> ScenarioSpec:
        """The seed design every campaign starts from (and is gated against)."""
        return self.base

    def neighbor(
        self,
        spec: ScenarioSpec,
        rng: random.Random,
        exclude: frozenset = frozenset(),
    ) -> ScenarioSpec:
        """One valid neighbor of ``spec`` with a fresh ``scenario_id``.

        Draws a knob, perturbs, and redraws on invalid or excluded candidates
        (up to ``max_draws``); deterministic in the rng stream.
        """
        for _ in range(self.max_draws):
            knob = rng.choice(self.knobs)
            candidate = knob.perturb(spec, rng)
            if candidate is None:
                continue
            scenario_id = candidate.scenario_id
            if scenario_id == spec.scenario_id or scenario_id in exclude:
                continue
            if candidate.is_valid():
                return candidate
        raise OptimizeError(
            f"could not draw a valid distinct neighbor of {spec.scenario_id} "
            f"after {self.max_draws} attempts; widen the knob bounds"
        )

    def neighbors(
        self, spec: ScenarioSpec, rng: random.Random, count: int
    ) -> List[ScenarioSpec]:
        """``count`` *distinct* valid neighbors (distinct among themselves)."""
        drawn: List[ScenarioSpec] = []
        seen: set = set()
        for _ in range(count):
            candidate = self.neighbor(spec, rng, exclude=frozenset(seen))
            seen.add(candidate.scenario_id)
            drawn.append(candidate)
        return drawn

    def describe(self) -> Dict:
        """The serializable identity of this space (campaign-log header)."""
        return {
            "base_scenario_id": self.base.scenario_id,
            "base": self.base.to_dict(),
            "knobs": [knob.describe() for knob in self.knobs],
        }


def knob_from_dict(document: Dict) -> Knob:
    """Rebuild a knob from its :meth:`describe` document."""
    kind = document.get("kind")
    if kind == "int":
        return IntKnob(
            field=document["field"],
            minimum=int(document["minimum"]),
            maximum=int(document["maximum"]),
            step=int(document.get("step", 1)),
        )
    if kind == "permutation":
        return PermutationKnob(field=document.get("field", "product_order"))
    raise OptimizeError(f"unknown knob kind {kind!r}; expected 'int' or 'permutation'")


# ---------------------------------------------------------------------------
# named campaign presets
# ---------------------------------------------------------------------------

def _slotting_base(seed: int) -> ScenarioSpec:
    """A small fulfillment center with a skewed (Zipf) demand mix.

    Slotting only matters when products differ in popularity: under a Zipf
    mix, moving the popular products onto shelves near the stations shortens
    the realized tours, so the ``product_order`` permutation has a real
    gradient for the search to climb.  The seed design starts from a
    deliberately naive slotting (an arbitrary legacy assignment that parks
    the demand head on far shelves) — the situation a slotting campaign
    exists to fix.
    """
    return ScenarioSpec(
        kind="fulfillment",
        num_slices=1,
        shelf_columns=4,
        shelf_bands=3,
        num_stations=1,
        num_products=6,
        units=12,
        workload_mix="zipf",
        zipf_exponent=1.4,
        horizon=600,
        seed=seed,
        product_order=(6, 4, 1, 3, 2, 5),
    )


def slotting_space(seed: int = 0) -> DesignSpace:
    """Slot-to-product assignment only: the pure slotting campaign."""
    return DesignSpace(base=_slotting_base(seed), knobs=(PermutationKnob(),))


def layout_space(seed: int = 0) -> DesignSpace:
    """Layout geometry only: shelf grid, station count/size, no slotting."""
    return DesignSpace(
        base=_slotting_base(seed),
        knobs=(
            IntKnob("shelf_columns", 3, 6),
            IntKnob("shelf_bands", 1, 5, step=2),
            IntKnob("num_stations", 1, 2),
            IntKnob("station_cells", 1, 3),
        ),
    )


def joint_space(seed: int = 0) -> DesignSpace:
    """Slotting and layout geometry moved together (the co-design campaign)."""
    return DesignSpace(
        base=_slotting_base(seed),
        knobs=(
            PermutationKnob(),
            IntKnob("shelf_columns", 3, 6),
            IntKnob("shelf_bands", 1, 5, step=2),
            IntKnob("num_stations", 1, 2),
        ),
    )


def sorting_space(seed: int = 0) -> DesignSpace:
    """Sorting-center geometry: chute grid and spacing, bins and bin cells."""
    base = ScenarioSpec(
        kind="sorting",
        num_slices=2,
        shelf_columns=5,
        shelf_bands=1,
        chute_spacing=2,
        num_stations=2,
        units=8,
        horizon=600,
        seed=seed,
    )
    return DesignSpace(
        base=base,
        knobs=(
            IntKnob("shelf_columns", 3, 7),
            IntKnob("chute_spacing", 2, 4),
            IntKnob("num_stations", 1, 3),
            IntKnob("station_cells", 1, 2),
        ),
    )


#: Named campaign presets reachable from ``repro optimize --preset``.
OPTIMIZE_PRESETS = {
    "slotting-small": slotting_space,
    "layout-small": layout_space,
    "joint-small": joint_space,
    "sorting-small": sorting_space,
}


def preset_space(name: str, seed: int = 0) -> DesignSpace:
    """The design space of a named campaign preset."""
    if name not in OPTIMIZE_PRESETS:
        raise OptimizeError(
            f"unknown optimize preset {name!r}; available: "
            f"{', '.join(sorted(OPTIMIZE_PRESETS))}"
        )
    return OPTIMIZE_PRESETS[name](seed)
