"""Pluggable objectives scoring one :class:`~repro.experiments.store.RunRecord`.

Every candidate design the optimizer proposes is executed by the existing
solve→simulate pipeline and scored from its run record.  Scores are
**maximized** and must be deterministic functions of the record (the record
itself is deterministic for a seeded scenario), so a campaign's trajectory is
reproducible bit for bit.

Infeasible, timed-out and crashed candidates score as a *finite* worst-case
penalty (:data:`WORST_SCORE`) rather than raising: a local search that walks
into an unbuildable corner of the design space must step back out of it, not
crash the campaign.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..experiments.store import STATUS_OK, RunRecord
from .space import OptimizeError

#: The finite worst-case score of an infeasible/timeout/error candidate.
#: Finite so acceptance rules (annealing's ``exp((s'-s)/T)``) stay well
#: defined, and far below any achievable metric so such a candidate can never
#: be accepted over a working design on a tie.
WORST_SCORE = -1.0e6


class Objective:
    """Base objective: status guard + violation penalty around a metric.

    Subclasses implement :meth:`metric` over an ``ok`` record; this base
    folds contract violations in as a penalty and maps every non-``ok``
    status (infeasible, timeout, error — and missing records) to
    :data:`WORST_SCORE`.
    """

    name = "objective"

    def __init__(self, violation_weight: float = 0.1):
        if violation_weight < 0:
            raise OptimizeError(
                f"violation_weight must be non-negative (got {violation_weight:g})"
            )
        self.violation_weight = violation_weight

    def metric(self, record: RunRecord) -> float:
        raise NotImplementedError

    def score(self, record: Optional[RunRecord]) -> float:
        """The candidate's score (higher is better); always finite."""
        if record is None or record.status != STATUS_OK:
            return WORST_SCORE
        violations = float(record.sim.get("contract_violations", 0.0))
        return float(self.metric(record)) - self.violation_weight * violations

    def describe(self) -> Dict:
        return {"name": self.name, "violation_weight": self.violation_weight}


class ThroughputObjective(Objective):
    """Realized throughput of the digital twin (units per timestep)."""

    name = "throughput"

    def metric(self, record: RunRecord) -> float:
        if record.sim:
            return float(record.sim.get("realized_throughput", 0.0))
        # Solve-only scenarios: fall back to the synthesized rate.
        return record.units_delivered / max(1, record.spec.horizon)


class MakespanObjective(Objective):
    """Negated realized makespan: finish the same workload sooner."""

    name = "makespan"

    def metric(self, record: RunRecord) -> float:
        throughput = float(record.sim.get("realized_throughput", 0.0))
        served = float(record.sim.get("units_served", 0.0))
        if throughput <= 0.0 or served <= 0.0:
            return WORST_SCORE
        return -(served / throughput)


class AgentsObjective(Objective):
    """Negated fleet size: service the workload with fewer agents.

    The synthesis objective already minimizes agents *for a fixed design*;
    this objective lets the outer search move the design itself toward
    layouts whose travel structure needs a smaller fleet (the travel-cost
    proxy of the slotting literature).
    """

    name = "agents"

    def metric(self, record: RunRecord) -> float:
        return -float(record.num_agents)


#: Named objectives reachable from ``repro optimize --objective``.
OBJECTIVES: Dict[str, Type[Objective]] = {
    "throughput": ThroughputObjective,
    "makespan": MakespanObjective,
    "agents": AgentsObjective,
}


def make_objective(name: str, violation_weight: float = 0.1) -> Objective:
    """Build a named objective."""
    if name not in OBJECTIVES:
        raise OptimizeError(
            f"unknown objective {name!r}; available: {', '.join(sorted(OBJECTIVES))}"
        )
    return OBJECTIVES[name](violation_weight=violation_weight)
