"""repro.optimize — closed-loop layout & slotting search over the pipeline.

The subsystem that turns the evaluator into a designer::

    DesignSpace ──neighbors──▶ Optimizer ──candidates──▶ Evaluator
         ▲                        │                          │
         │                     accept?◀──scores──── Objective◀─ RunRecord
         └──────────── best design / campaign log ◀──────────┘

* :mod:`~repro.optimize.space` — declarative knobs over ScenarioSpec
  (slotting permutation, layout geometry) with seeded, validity-filtered
  neighbor generation, plus named campaign presets.
* :mod:`~repro.optimize.objective` — pluggable record→score functions
  (throughput, makespan, fleet size) with finite worst-case penalties for
  infeasible/crashed candidates.
* :mod:`~repro.optimize.search` — hill climbing and simulated annealing
  behind a tiny :class:`~repro.optimize.search.Optimizer` protocol.
* :mod:`~repro.optimize.evaluate` — candidate scoring through the service
  layer: ResultCache + ServicePool locally, a live SolveService in-process,
  or a ``repro serve`` replica fleet over HTTP.
* :mod:`~repro.optimize.campaign` — the seeded, resumable campaign loop
  with a JSONL trajectory log and optimize.* observability events.
"""

from .campaign import (
    CAMPAIGN_SCHEMA,
    REPORT_SCHEMA,
    STEP_SCHEMA,
    CampaignLog,
    CampaignResult,
    StepRecord,
    run_campaign,
)
from .evaluate import CachedEvaluator, Evaluation, RemoteEvaluator, ServiceEvaluator
from .objective import (
    OBJECTIVES,
    WORST_SCORE,
    AgentsObjective,
    MakespanObjective,
    Objective,
    ThroughputObjective,
    make_objective,
)
from .search import OPTIMIZERS, HillClimbing, Optimizer, SimulatedAnnealing, make_optimizer
from .space import (
    OPTIMIZE_PRESETS,
    DesignSpace,
    IntKnob,
    OptimizeError,
    PermutationKnob,
    joint_space,
    knob_from_dict,
    layout_space,
    preset_space,
    slotting_space,
    sorting_space,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "REPORT_SCHEMA",
    "STEP_SCHEMA",
    "CampaignLog",
    "CampaignResult",
    "StepRecord",
    "run_campaign",
    "CachedEvaluator",
    "Evaluation",
    "RemoteEvaluator",
    "ServiceEvaluator",
    "OBJECTIVES",
    "WORST_SCORE",
    "AgentsObjective",
    "MakespanObjective",
    "Objective",
    "ThroughputObjective",
    "make_objective",
    "OPTIMIZERS",
    "HillClimbing",
    "Optimizer",
    "SimulatedAnnealing",
    "make_optimizer",
    "OPTIMIZE_PRESETS",
    "DesignSpace",
    "IntKnob",
    "OptimizeError",
    "PermutationKnob",
    "joint_space",
    "knob_from_dict",
    "layout_space",
    "preset_space",
    "slotting_space",
    "sorting_space",
]
