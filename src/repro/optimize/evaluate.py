"""Candidate evaluators: every design is scored by the serving layer.

The optimizer never runs the pipeline itself — it hands candidate
:class:`~repro.experiments.scenario.ScenarioSpec` objects to an *evaluator*
and gets :class:`~repro.experiments.store.RunRecord` results back, together
with the cache tier that answered.  Three implementations share the protocol:

* :class:`CachedEvaluator` — the local batch path: a content-addressed
  :class:`~repro.service.cache.ResultCache` (optionally backed by a
  persistent JSONL :class:`~repro.experiments.store.ResultStore`) in front
  of either an in-process run or a :class:`~repro.service.pool.ServicePool`
  worker fleet.  Re-visited candidates — a search walking back over its own
  footsteps, or a resumed campaign — are cache hits and cost nothing.
* :class:`ServiceEvaluator` — wraps a live in-process
  :class:`~repro.service.server.SolveService` (the ``POST /optimize``
  endpoint's path): every candidate goes through ``resolve()`` and shares
  the service's cache, pool, backpressure and metrics.
* :class:`RemoteEvaluator` — drives a fleet of ``repro serve`` replicas
  round-robin over HTTP via
  :class:`~repro.service.client.RoundRobinClient`; the replicas' shared
  JSONL store is then the campaign's warm tier.

Evaluators must never raise for a *candidate's* failure: an infeasible or
crashed run comes back as a structured record and the objective maps it to a
finite worst-case score.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..experiments.runner import execute_scenario
from ..experiments.scenario import ScenarioSpec
from ..experiments.store import STATUS_ERROR, ResultStore, RunRecord
from ..service.api import ServiceRequest
from ..service.cache import ResultCache
from ..service.pool import PoolSaturated, ServicePool


@dataclass
class Evaluation:
    """One scored candidate: the record plus how the lookup resolved."""

    spec: ScenarioSpec
    record: RunRecord
    #: Cache outcome: ``hit``/``store``/``coalesced`` (served warm), ``miss``
    #: (computed), or ``""`` when the tier is unknown (remote error paths).
    cache: str
    seconds: float = 0.0

    @property
    def served_from_cache(self) -> bool:
        return self.cache in ("hit", "store", "coalesced")


def _error_record(spec: ScenarioSpec, message: str) -> RunRecord:
    return RunRecord(spec=spec, status=STATUS_ERROR, message=message)


class CachedEvaluator:
    """ResultCache-fronted evaluation, in-process or on a ServicePool.

    ``workers=0`` computes misses inline (no subprocess spawn — the fast
    mode for tests, examples and small campaigns); ``workers>=1`` fans
    misses out over a spawned worker pool, and :meth:`evaluate_many`
    submits a whole proposal batch before collecting, so a hill-climbing
    step's neighbors compute in parallel.
    """

    def __init__(
        self,
        workers: int = 0,
        store_path: Optional[str] = None,
        cache_capacity: int = 4096,
        timeout_seconds: Optional[float] = None,
        start_method: str = "spawn",
        max_pending: int = 64,
    ):
        store = ResultStore(store_path) if store_path else None
        self.cache = ResultCache(capacity=cache_capacity, store=store, shards=4)
        self.timeout_seconds = timeout_seconds
        self.pool: Optional[ServicePool] = None
        if workers >= 1:
            self.pool = ServicePool(
                workers=workers, max_pending=max_pending, start_method=start_method
            )
        self.evaluations = 0

    # -- computation ------------------------------------------------------------
    def _compute(self, spec: ScenarioSpec) -> RunRecord:
        document = execute_scenario(spec.to_dict(), self.timeout_seconds)
        document.pop("obs", None)
        return RunRecord.from_dict(document)

    def _complete(self, spec: ScenarioSpec, record: RunRecord) -> None:
        flight, leader = self.cache.lease(spec.scenario_id)
        if leader:
            self.cache.complete(spec.scenario_id, flight, record)

    def evaluate(self, spec: ScenarioSpec) -> Evaluation:
        started = time.perf_counter()
        self.evaluations += 1
        record, tier = self.cache.get(spec.scenario_id)
        if record is None:
            if self.pool is None:
                record = self._compute(spec)
            else:
                record = self._pool_result(self._pool_submit(spec), spec)
            self._complete(spec, record)
        return Evaluation(
            spec=spec,
            record=record,
            cache=tier if tier != "miss" else "miss",
            seconds=time.perf_counter() - started,
        )

    def _pool_submit(self, spec: ScenarioSpec):
        try:
            return self.pool.submit(spec.to_dict(), self.timeout_seconds)
        except PoolSaturated as error:  # incl. PoolDraining
            return error

    def _pool_result(self, handle, spec: ScenarioSpec) -> RunRecord:
        if isinstance(handle, PoolSaturated):
            return _error_record(spec, f"pool rejected the candidate: {handle}")
        try:
            document = handle.result()
            document.pop("obs", None)
            return RunRecord.from_dict(document)
        except Exception as error:  # noqa: BLE001 - a candidate never kills the campaign
            return _error_record(
                spec, f"worker failed: {type(error).__name__}: {error}"
            )

    def evaluate_many(self, specs: Sequence[ScenarioSpec]) -> List[Evaluation]:
        """Evaluate a proposal batch; misses fan out over the pool at once.

        Duplicate ids inside one batch compute once (the duplicates report
        the ``coalesced`` tier, exactly like concurrent identical requests
        against the serving layer would).
        """
        if self.pool is None:
            return [self.evaluate(spec) for spec in specs]
        started = time.perf_counter()
        evaluations: List[Optional[Evaluation]] = [None] * len(specs)
        pending: Dict[str, List[int]] = {}
        handles: Dict[str, object] = {}
        for index, spec in enumerate(specs):
            self.evaluations += 1
            if spec.scenario_id in pending:
                pending[spec.scenario_id].append(index)
                continue
            record, tier = self.cache.get(spec.scenario_id)
            if record is not None:
                evaluations[index] = Evaluation(
                    spec=spec, record=record, cache=tier,
                    seconds=time.perf_counter() - started,
                )
                continue
            pending[spec.scenario_id] = [index]
            handles[spec.scenario_id] = self._pool_submit(spec)
        for scenario_id, indices in pending.items():
            spec = specs[indices[0]]
            record = self._pool_result(handles[scenario_id], spec)
            self._complete(spec, record)
            seconds = time.perf_counter() - started
            for position, index in enumerate(indices):
                evaluations[index] = Evaluation(
                    spec=specs[index],
                    record=record,
                    cache="miss" if position == 0 else "coalesced",
                    seconds=seconds,
                )
        return [evaluation for evaluation in evaluations if evaluation is not None]

    # -- accounting / lifecycle -------------------------------------------------
    def stats(self) -> Dict[str, float]:
        snapshot = self.cache.stats
        hits = snapshot["hits_memory"] + snapshot["hits_store"] + snapshot["coalesced"]
        return {
            "evaluations": self.evaluations,
            "hits": hits,
            "misses": snapshot["misses"],
            "hit_rate": self.cache.hit_rate,
        }

    def close(self) -> None:
        if self.pool is not None:
            self.pool.drain(timeout=60.0)


class ServiceEvaluator:
    """Evaluate through a live in-process :class:`SolveService`.

    The ``POST /optimize`` endpoint runs its campaign on this evaluator, so
    candidates share the service's cache, single-flight coalescing, worker
    pool and metrics with ordinary ``/solve`` traffic.
    """

    def __init__(self, service, timeout_seconds: Optional[float] = None):
        self.service = service
        self.timeout_seconds = timeout_seconds
        self.evaluations = 0
        self._hits = 0
        self._misses = 0

    def evaluate(self, spec: ScenarioSpec) -> Evaluation:
        started = time.perf_counter()
        self.evaluations += 1
        request = ServiceRequest(scenario=spec, timeout_seconds=self.timeout_seconds)
        response = self.service.resolve(request)
        if response.record is not None:
            record = RunRecord.from_dict(response.record)
        else:  # rejected (saturated/draining): a structured failure, not a crash
            record = _error_record(spec, response.message or f"service {response.state}")
        evaluation = Evaluation(
            spec=spec,
            record=record,
            cache=response.cache,
            seconds=time.perf_counter() - started,
        )
        if evaluation.served_from_cache:
            self._hits += 1
        else:
            self._misses += 1
        return evaluation

    def evaluate_many(self, specs: Sequence[ScenarioSpec]) -> List[Evaluation]:
        return [self.evaluate(spec) for spec in specs]

    def stats(self) -> Dict[str, float]:
        lookups = self._hits + self._misses
        return {
            "evaluations": self.evaluations,
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }

    def close(self) -> None:  # the service's lifecycle belongs to its owner
        pass


class RemoteEvaluator:
    """Evaluate against a fleet of ``repro serve`` replicas, round-robin."""

    def __init__(self, urls: Sequence[str], timeout: float = 300.0):
        from ..service.client import RoundRobinClient, ServiceClientError

        self._client_error = ServiceClientError
        self.client = RoundRobinClient(urls, timeout=timeout)
        self.evaluations = 0
        self._hits = 0
        self._misses = 0

    def evaluate(self, spec: ScenarioSpec) -> Evaluation:
        started = time.perf_counter()
        self.evaluations += 1
        request = ServiceRequest(scenario=spec)
        cache = ""
        try:
            status, view = self.client.solve(request)
            document = view.document
            if status < 400 and isinstance(document.get("record"), dict):
                record = RunRecord.from_dict(document["record"])
                cache = view.cache
            else:
                record = _error_record(
                    spec,
                    f"replica answered HTTP {status}: "
                    f"{document.get('message') or document.get('state', '')}",
                )
        except self._client_error as error:
            record = _error_record(spec, f"replica unreachable: {error}")
        evaluation = Evaluation(
            spec=spec, record=record, cache=cache,
            seconds=time.perf_counter() - started,
        )
        if evaluation.served_from_cache:
            self._hits += 1
        else:
            self._misses += 1
        return evaluation

    def evaluate_many(self, specs: Sequence[ScenarioSpec]) -> List[Evaluation]:
        # Sequential over the fleet: the rotation spreads the cold solves,
        # and the replicas' shared store warms every subsequent lookup.
        return [self.evaluate(spec) for spec in specs]

    def stats(self) -> Dict[str, float]:
        lookups = self._hits + self._misses
        return {
            "evaluations": self.evaluations,
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }

    def close(self) -> None:
        self.client.close()
