"""The campaign loop: propose → evaluate → accept, logged and resumable.

:func:`run_campaign` wires the four pluggable pieces together — a
:class:`~repro.optimize.space.DesignSpace` proposes neighbors, an evaluator
scores them through the solve→simulate pipeline, an
:class:`~repro.optimize.objective.Objective` turns records into scalars, and
an :class:`~repro.optimize.search.Optimizer` decides whether to move.  Every
step appends one JSON line to the campaign log, and the whole trajectory is
a deterministic function of ``(space, optimizer, objective, seed, budget)``.

Resume is **replay**: rather than checkpointing optimizer internals, a
resumed campaign re-seeds the rng and regenerates each logged step's
proposals (consuming the identical rng stream), verifies the regenerated
``scenario_id`` sequence matches the log, and reuses the logged scores
without re-evaluating anything.  When the replay reaches the end of the log
the search continues live, indistinguishable — byte for byte — from a run
that was never interrupted.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.scenario import ScenarioSpec
from ..obs.tracing import span
from .objective import Objective
from .search import Optimizer
from .space import DesignSpace, OptimizeError

STEP_SCHEMA = "optimize-step"
CAMPAIGN_SCHEMA = "optimize-campaign"
REPORT_SCHEMA = "optimize-report"
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# trajectory records
# ---------------------------------------------------------------------------

@dataclass
class StepRecord:
    """One step of the trajectory; deliberately free of wall-clock fields.

    Everything here is a deterministic function of the campaign
    configuration, so the serialized step (and the trajectory fingerprint
    built from it) is byte-identical between cold runs, warm-cache runs,
    and resume-replays.
    """

    step: int
    #: The step's evaluated proposals: ``{scenario_id, score, status}`` each.
    proposals: List[Dict]
    chosen: str
    chosen_score: float
    accepted: bool
    improved: bool
    current_scenario_id: str
    current_score: float
    best_scenario_id: str
    best_score: float
    temperature: float
    #: Cumulative evaluation count (baseline included) after this step.
    evaluations: int

    def to_dict(self) -> Dict:
        return {
            "schema": STEP_SCHEMA,
            "version": SCHEMA_VERSION,
            "step": self.step,
            "proposals": self.proposals,
            "chosen": self.chosen,
            "chosen_score": self.chosen_score,
            "accepted": self.accepted,
            "improved": self.improved,
            "current_scenario_id": self.current_scenario_id,
            "current_score": self.current_score,
            "best_scenario_id": self.best_scenario_id,
            "best_score": self.best_score,
            "temperature": self.temperature,
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "StepRecord":
        return cls(
            step=int(document["step"]),
            proposals=list(document["proposals"]),
            chosen=str(document["chosen"]),
            chosen_score=float(document["chosen_score"]),
            accepted=bool(document["accepted"]),
            improved=bool(document["improved"]),
            current_scenario_id=str(document["current_scenario_id"]),
            current_score=float(document["current_score"]),
            best_scenario_id=str(document["best_scenario_id"]),
            best_score=float(document["best_score"]),
            temperature=float(document["temperature"]),
            evaluations=int(document["evaluations"]),
        )


class CampaignLog:
    """Append-only JSONL trajectory log: one header line, then step lines.

    Reads are tolerant of a truncated trailing line (the shape an
    interrupted campaign leaves behind) — the partial line is dropped and
    replay resumes from the last complete step.
    """

    def __init__(self, path: str):
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def write_header(self, header: Dict) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")

    def append_step(self, record: StepRecord) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def read(self) -> Tuple[Dict, List[StepRecord]]:
        header: Optional[Dict] = None
        steps: List[StepRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    document = json.loads(stripped)
                except json.JSONDecodeError:
                    break  # truncated tail from an interrupted run
                if header is None:
                    if document.get("schema") != CAMPAIGN_SCHEMA:
                        raise OptimizeError(
                            f"{self.path}: not a campaign log "
                            f"(schema {document.get('schema')!r})"
                        )
                    header = document
                elif document.get("schema") == STEP_SCHEMA:
                    steps.append(StepRecord.from_dict(document))
        if header is None:
            raise OptimizeError(f"{self.path}: empty campaign log")
        return header, steps


@dataclass
class CampaignResult:
    """The finished campaign: baseline, best design, full trajectory, stats."""

    baseline_spec: ScenarioSpec
    baseline_score: float
    best_spec: ScenarioSpec
    best_score: float
    steps: List[StepRecord]
    evaluations: int
    seconds: float
    seed: int
    budget: int
    optimizer: Dict
    objective: Dict
    cache: Dict = field(default_factory=dict)
    resumed_steps: int = 0

    @property
    def accepted(self) -> int:
        return sum(1 for record in self.steps if record.accepted)

    @property
    def improved(self) -> int:
        return sum(1 for record in self.steps if record.improved)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / len(self.steps) if self.steps else 0.0

    @property
    def improvement(self) -> float:
        return self.best_score - self.baseline_score

    def to_dict(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "version": SCHEMA_VERSION,
            "seed": self.seed,
            "budget": self.budget,
            "optimizer": self.optimizer,
            "objective": self.objective,
            "baseline": {
                "scenario_id": self.baseline_spec.scenario_id,
                "score": self.baseline_score,
                "spec": self.baseline_spec.to_dict(),
            },
            "best": {
                "scenario_id": self.best_spec.scenario_id,
                "score": self.best_score,
                "spec": self.best_spec.to_dict(),
            },
            "improvement": self.improvement,
            "steps": [record.to_dict() for record in self.steps],
            "evaluations": self.evaluations,
            "accepted": self.accepted,
            "improved": self.improved,
            "acceptance_rate": self.acceptance_rate,
            "resumed_steps": self.resumed_steps,
            "cache": dict(self.cache),
            "seconds": self.seconds,
        }

    def fingerprint(self) -> str:
        """A digest of the *deterministic* trajectory.

        Excludes wall-clock seconds and cache-tier statistics on purpose:
        a cold run, a warm-cache rerun, and a resume-replay of the same
        campaign all share this fingerprint.
        """
        document = {
            "seed": self.seed,
            "budget": self.budget,
            "optimizer": self.optimizer,
            "objective": self.objective,
            "baseline": {
                "scenario_id": self.baseline_spec.scenario_id,
                "score": self.baseline_score,
            },
            "best": {
                "scenario_id": self.best_spec.scenario_id,
                "score": self.best_score,
            },
            "steps": [record.to_dict() for record in self.steps],
        }
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# the loop
# ---------------------------------------------------------------------------

def _campaign_header(
    space: DesignSpace,
    optimizer: Optimizer,
    objective: Objective,
    seed: int,
    budget: int,
    baseline_id: str,
    baseline_score: float,
) -> Dict:
    return {
        "schema": CAMPAIGN_SCHEMA,
        "version": SCHEMA_VERSION,
        "seed": seed,
        "budget": budget,
        "optimizer": optimizer.describe(),
        "objective": objective.describe(),
        "space": space.describe(),
        "baseline": {"scenario_id": baseline_id, "score": baseline_score},
    }


def _canonical(value) -> object:
    """JSON round-trip so tuples compare equal to their logged list form."""
    return json.loads(json.dumps(value, sort_keys=True))


def _check_resume_header(logged: Dict, expected: Dict, path: str) -> None:
    # Budget is part of the identity: the per-step batch size is trimmed to
    # the remaining budget, so resuming under a different budget would
    # diverge from the uninterrupted trajectory instead of extending it.
    for key in ("seed", "budget", "optimizer", "objective", "space"):
        if _canonical(logged.get(key)) != _canonical(expected[key]):
            raise OptimizeError(
                f"cannot resume from {path}: logged {key} "
                f"{logged.get(key)!r} != configured {expected[key]!r}"
            )


def run_campaign(
    space: DesignSpace,
    optimizer: Optimizer,
    objective: Objective,
    evaluator,
    budget: int,
    seed: int = 0,
    log_path: Optional[str] = None,
    resume: bool = False,
    events=None,
    registry=None,
    progress: Optional[Callable[[StepRecord, bool], None]] = None,
) -> CampaignResult:
    """Run (or resume) one optimization campaign; returns the full result.

    ``budget`` counts pipeline evaluations *including* the baseline; the
    final step's proposal batch is trimmed so the count is exact.
    ``progress(record, replayed)`` is invoked once per step — replayed
    steps first (``replayed=True``), then live ones.
    """
    if budget < 1:
        raise OptimizeError(f"budget must be at least 1 evaluation (got {budget})")
    started = time.perf_counter()
    rng = Random(seed)
    log = CampaignLog(log_path) if log_path else None
    resuming = bool(resume and log is not None and log.exists())

    baseline = space.baseline()
    steps: List[StepRecord] = []
    resumed_steps = 0

    def emit(kind: str, level: str = "info", message: str = "", **fields) -> None:
        if events is not None:
            events.emit(kind, "optimize", level=level, message=message, **fields)

    if resuming:
        logged_header, logged_steps = log.read()
        baseline_score = float(logged_header["baseline"]["score"])
        expected = _campaign_header(
            space, optimizer, objective, seed, budget,
            baseline.scenario_id, baseline_score,
        )
        _check_resume_header(logged_header, expected, log.path)
        if logged_header["baseline"]["scenario_id"] != baseline.scenario_id:
            raise OptimizeError(
                f"cannot resume from {log.path}: baseline scenario changed"
            )
    else:
        evaluation = evaluator.evaluate(baseline)
        baseline_score = objective.score(evaluation.record)
        logged_steps = []
        if log is not None:
            log.write_header(
                _campaign_header(
                    space, optimizer, objective, seed, budget,
                    baseline.scenario_id, baseline_score,
                )
            )

    emit(
        "optimize.resumed" if resuming else "optimize.started",
        message=(
            f"{optimizer.name}/{objective.name} campaign, "
            f"budget {budget}, seed {seed}"
        ),
        seed=seed,
        budget=budget,
        optimizer=optimizer.name,
        objective=objective.name,
        baseline_scenario_id=baseline.scenario_id,
        baseline_score=baseline_score,
        replayed_steps=len(logged_steps),
    )

    current_spec, current_score = baseline, baseline_score
    best_spec, best_score = baseline, baseline_score
    evaluations = 1  # the baseline
    step = 0
    exhausted = False

    counter = registry.counter if registry is not None else None

    # -- replay the logged prefix ---------------------------------------------
    for logged in logged_steps:
        want = min(optimizer.proposals_per_step(), budget - evaluations)
        if want < 1 or len(logged.proposals) != want:
            raise OptimizeError(
                f"cannot resume from {log.path}: step {logged.step} logged "
                f"{len(logged.proposals)} proposals, replay expects {max(want, 0)}"
            )
        proposals = space.neighbors(current_spec, rng, want)
        regenerated = [spec.scenario_id for spec in proposals]
        logged_ids = [entry["scenario_id"] for entry in logged.proposals]
        if regenerated != logged_ids:
            raise OptimizeError(
                f"cannot resume from {log.path}: step {logged.step} replay "
                f"diverged ({regenerated} != {logged_ids}); the log was made "
                "with a different space or seed"
            )
        scores = [float(entry["score"]) for entry in logged.proposals]
        chosen_index = scores.index(max(scores))
        chosen_spec, chosen_score = proposals[chosen_index], scores[chosen_index]
        accepted = optimizer.accept(current_score, chosen_score, step, rng)
        if accepted:
            current_spec, current_score = chosen_spec, chosen_score
        if chosen_score > best_score:
            best_spec, best_score = chosen_spec, chosen_score
        evaluations += want
        steps.append(logged)
        resumed_steps += 1
        step += 1
        if progress is not None:
            progress(logged, True)

    # -- live search ------------------------------------------------------------
    with span("optimize.campaign", optimizer=optimizer.name, budget=budget) as campaign_span:
        while evaluations < budget and not exhausted:
            want = min(optimizer.proposals_per_step(), budget - evaluations)
            try:
                proposals = space.neighbors(current_spec, rng, want)
            except OptimizeError as error:
                emit(
                    "optimize.exhausted",
                    level="warning",
                    message=str(error),
                    step=step,
                )
                exhausted = True
                break
            evaluated = evaluator.evaluate_many(proposals)
            evaluations += len(evaluated)
            campaign_span.add("evaluations", len(evaluated))
            scores = [objective.score(item.record) for item in evaluated]
            chosen_index = scores.index(max(scores))
            chosen_spec = evaluated[chosen_index].spec
            chosen_score = scores[chosen_index]
            accepted = optimizer.accept(current_score, chosen_score, step, rng)
            improved = chosen_score > best_score
            if accepted:
                current_spec, current_score = chosen_spec, chosen_score
            if improved:
                best_spec, best_score = chosen_spec, chosen_score
            record = StepRecord(
                step=step,
                proposals=[
                    {
                        "scenario_id": item.spec.scenario_id,
                        "score": score,
                        "status": item.record.status,
                    }
                    for item, score in zip(evaluated, scores)
                ],
                chosen=chosen_spec.scenario_id,
                chosen_score=chosen_score,
                accepted=accepted,
                improved=improved,
                current_scenario_id=current_spec.scenario_id,
                current_score=current_score,
                best_scenario_id=best_spec.scenario_id,
                best_score=best_score,
                temperature=optimizer.temperature(step),
                evaluations=evaluations,
            )
            steps.append(record)
            if log is not None:
                log.append_step(record)
            emit(
                "optimize.candidate",
                message=(
                    f"step {step}: chose {chosen_spec.scenario_id} "
                    f"score {chosen_score:.4f} "
                    f"({'accepted' if accepted else 'rejected'})"
                ),
                step=step,
                scenario_id=chosen_spec.scenario_id,
                score=chosen_score,
                accepted=accepted,
                evaluations=evaluations,
            )
            if improved:
                emit(
                    "optimize.improved",
                    message=(
                        f"step {step}: new best {best_spec.scenario_id} "
                        f"score {best_score:.4f}"
                    ),
                    step=step,
                    scenario_id=best_spec.scenario_id,
                    score=best_score,
                )
            if counter is not None:
                counter("optimize_steps_total").inc()
                counter("optimize_evaluations_total").inc(len(evaluated))
                if improved:
                    counter("optimize_improved_total").inc()
                registry.gauge("optimize_best_score").set(best_score)
            if progress is not None:
                progress(record, False)
            step += 1

    seconds = time.perf_counter() - started
    stats = evaluator.stats() if hasattr(evaluator, "stats") else {}
    result = CampaignResult(
        baseline_spec=baseline,
        baseline_score=baseline_score,
        best_spec=best_spec,
        best_score=best_score,
        steps=steps,
        evaluations=evaluations,
        seconds=seconds,
        seed=seed,
        budget=budget,
        optimizer=optimizer.describe(),
        objective=objective.describe(),
        cache=stats,
        resumed_steps=resumed_steps,
    )
    emit(
        "optimize.finished",
        message=(
            f"best {best_spec.scenario_id} score {best_score:.4f} "
            f"(baseline {baseline_score:.4f}) after {evaluations} evaluations"
        ),
        best_scenario_id=best_spec.scenario_id,
        best_score=best_score,
        baseline_score=baseline_score,
        improvement=result.improvement,
        evaluations=evaluations,
        acceptance_rate=result.acceptance_rate,
        cache_hit_rate=float(stats.get("hit_rate", 0.0)),
        seconds=seconds,
    )
    return result
