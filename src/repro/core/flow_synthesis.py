"""Agent-flow synthesis (Sec. IV-D): contracts → MILP → agent flow set.

The synthesis stage builds the traffic-system contract (composition of all
component contracts) and the workload contract, conjoins them, adds the
integrality-bridge coupling constraints (continuous per-product rates must sum
to integer agent-slot counts — see :mod:`repro.core.flow_variables`), and hands
the resulting model to an ILP backend (the paper uses Z3 over linear real
arithmetic; here HiGHS by default).  The satisfying assignment is packaged as
an :class:`AgentFlowSet`, the object the decomposition stage (Sec. IV-E)
consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..contracts import AGContract, check_composition_consistency
from ..solver import SolveStatus, solve_model
from ..solver.model import ConstraintModel
from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.products import ProductId
from ..warehouse.workload import Workload
from .component_contracts import traffic_system_contract
from .flow_variables import EdgeKey, FlowVariablePool, NodeKey
from .workload_contract import workload_contract

#: Objectives supported by the synthesizer.
OBJECTIVES = ("none", "min_agents", "min_carrying")


class FlowSynthesisError(RuntimeError):
    """Raised when no agent flow set satisfying the contracts exists."""


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the flow-synthesis stage.

    ``cycle_time_factor`` scales the cycle time (``tc = factor * m``); the
    paper's Property 4.1 uses factor 2.  ``warmup_periods`` reserves periods
    for pipeline warm-up (see :mod:`repro.core.workload_contract`); ``None``
    (the default) sizes the margin automatically from the traffic system —
    one period per hop of the longest shelving-row → station-queue route,
    which covers both the start-up transient and the units still in flight at
    the end of the horizon.  Set it to 0 to recover the paper's formula
    verbatim.
    """

    backend: str = "highs"
    objective: str = "min_agents"
    cycle_time_factor: int = 2
    warmup_periods: Optional[int] = None
    time_limit: Optional[float] = None
    check_contracts: bool = False

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(f"objective must be one of {OBJECTIVES}, got {self.objective!r}")
        if self.cycle_time_factor < 2:
            raise ValueError("cycle_time_factor must be at least 2 (Property 4.1)")
        if self.warmup_periods is not None and self.warmup_periods < 0:
            raise ValueError("warmup_periods must be non-negative")

    def resolve_warmup(self, system: TrafficSystem, num_periods: int) -> int:
        """The warm-up margin actually used for a given traffic system."""
        if self.warmup_periods is not None:
            return self.warmup_periods
        hops = system.max_shelving_to_station_hops() + 1
        return max(1, min(hops, max(1, num_periods // 3)))


@dataclass
class AgentFlowSet:
    """A satisfying per-cycle-period flow assignment.

    ``loaded_flows[(i, j)]`` / ``empty_flows[(i, j)]`` are the integer numbers
    of loaded / empty-handed agents moving from component ``i`` to ``j`` every
    cycle period; ``pickups[i]`` / ``dropoffs[i]`` are the integer per-period
    pickups and drop-offs; ``pickup_rates[(i, k)]`` / ``dropoff_rates[(i, k)]``
    are the continuous per-product rates the workload contract constrains
    (used to allocate products to delivery slots).  Zero entries are omitted.
    """

    system: TrafficSystem
    cycle_time: int
    num_periods: int
    warmup_periods: int = 0
    loaded_flows: Dict[EdgeKey, int] = field(default_factory=dict)
    empty_flows: Dict[EdgeKey, int] = field(default_factory=dict)
    pickups: Dict[ComponentId, int] = field(default_factory=dict)
    dropoffs: Dict[ComponentId, int] = field(default_factory=dict)
    pickup_rates: Dict[NodeKey, float] = field(default_factory=dict)
    dropoff_rates: Dict[NodeKey, float] = field(default_factory=dict)

    # -- aggregate queries ------------------------------------------------------
    @property
    def effective_periods(self) -> int:
        return max(1, self.num_periods - self.warmup_periods)

    @property
    def num_agents(self) -> int:
        """Each unit of aggregate edge flow is one agent slot (one agent
        advances one component per period), so the team size equals the total
        aggregate flow."""
        return sum(self.loaded_flows.values()) + sum(self.empty_flows.values())

    def deliveries_per_period(self) -> int:
        return sum(self.dropoffs.values())

    def pickups_per_period(self) -> int:
        return sum(self.pickups.values())

    def expected_deliveries(self) -> int:
        return self.deliveries_per_period() * self.num_periods

    def products(self) -> Tuple[ProductId, ...]:
        seen = {p for (_, p) in self.pickup_rates}
        seen.update(p for (_, p) in self.dropoff_rates)
        return tuple(sorted(seen))

    def loaded_inflow_of(self, component: ComponentId) -> int:
        return sum(v for (_, dst), v in self.loaded_flows.items() if dst == component)

    def loaded_outflow_of(self, component: ComponentId) -> int:
        return sum(v for (src, _), v in self.loaded_flows.items() if src == component)

    def empty_inflow_of(self, component: ComponentId) -> int:
        return sum(v for (_, dst), v in self.empty_flows.items() if dst == component)

    def empty_outflow_of(self, component: ComponentId) -> int:
        return sum(v for (src, _), v in self.empty_flows.items() if src == component)

    def total_inflow_of(self, component: ComponentId) -> int:
        return self.loaded_inflow_of(component) + self.empty_inflow_of(component)

    def product_rate(self, component: ComponentId, product: ProductId) -> float:
        return self.pickup_rates.get((component, product), 0.0)

    # -- validation ----------------------------------------------------------------
    def check_conservation(self) -> List[str]:
        """Return human-readable descriptions of any aggregate conservation violations."""
        problems: List[str] = []
        for component in self.system.components:
            index = component.index
            picked = self.pickups.get(index, 0)
            dropped = self.dropoffs.get(index, 0)
            loaded_balance = (
                self.loaded_inflow_of(index) + picked - dropped - self.loaded_outflow_of(index)
            )
            if loaded_balance != 0:
                problems.append(
                    f"loaded flow unbalanced at {component.name}: {loaded_balance:+d}"
                )
            empty_balance = (
                self.empty_inflow_of(index) - picked + dropped - self.empty_outflow_of(index)
            )
            if empty_balance != 0:
                problems.append(
                    f"empty-handed flow unbalanced at {component.name}: {empty_balance:+d}"
                )
        return problems

    def check_capacity(self) -> List[str]:
        problems: List[str] = []
        for component in self.system.components:
            inflow = self.total_inflow_of(component.index)
            if inflow > component.capacity:
                problems.append(
                    f"{component.name}: {inflow} agents per period exceeds capacity "
                    f"⌊{component.length}/2⌋ = {component.capacity}"
                )
        return problems

    def summary(self) -> str:
        return (
            f"agent flow set: {self.num_agents} agents, "
            f"{self.deliveries_per_period()} deliveries/period, "
            f"tc={self.cycle_time}, {self.num_periods} periods"
        )


@dataclass
class FlowSynthesisResult:
    """Everything the pipeline needs to know about a synthesis run."""

    status: SolveStatus
    flow_set: Optional[AgentFlowSet]
    cycle_time: int
    num_periods: int
    build_seconds: float
    solve_seconds: float
    num_variables: int
    num_constraints: int
    objective_value: Optional[float] = None
    message: str = ""
    traffic_contract: Optional[AGContract] = None
    workload_contract: Optional[AGContract] = None

    @property
    def succeeded(self) -> bool:
        return self.flow_set is not None

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.solve_seconds


def synthesize_flows(
    system: TrafficSystem,
    workload: Workload,
    horizon: int,
    options: Optional[SynthesisOptions] = None,
) -> FlowSynthesisResult:
    """Synthesize an agent flow set servicing ``workload`` within ``horizon`` steps.

    This is the paper's Fig. 3 flow: compile component contracts, compose them
    into the traffic-system contract, conjoin with the workload contract, and
    search for a satisfying assignment.
    """
    options = options or SynthesisOptions()
    build_start = time.perf_counter()

    cycle_time = system.cycle_time(options.cycle_time_factor)
    num_periods = horizon // cycle_time
    warmup_periods = options.resolve_warmup(system, num_periods)
    pool = FlowVariablePool.for_workload(system, workload)
    system_contract = traffic_system_contract(pool, num_periods)
    demand_contract = workload_contract(
        pool, workload, num_periods, warmup_periods=warmup_periods
    )
    conjunction = system_contract & demand_contract

    if options.check_contracts:
        message = check_composition_consistency(
            [system_contract, demand_contract], backend=options.backend
        )
        if message is not None:
            return FlowSynthesisResult(
                status=SolveStatus.INFEASIBLE,
                flow_set=None,
                cycle_time=cycle_time,
                num_periods=num_periods,
                build_seconds=time.perf_counter() - build_start,
                solve_seconds=0.0,
                num_variables=pool.num_variables,
                num_constraints=len(conjunction.all_constraints()),
                message=message,
                traffic_contract=system_contract,
                workload_contract=demand_contract,
            )

    model = _build_model(pool, conjunction, options)
    build_seconds = time.perf_counter() - build_start

    solve_start = time.perf_counter()
    result = solve_model(model, backend=options.backend, time_limit=options.time_limit)
    solve_seconds = time.perf_counter() - solve_start

    flow_set = None
    if result.status.has_solution:
        flow_set = _extract_flow_set(
            pool, result.values, cycle_time, num_periods, warmup_periods
        )
    return FlowSynthesisResult(
        status=result.status,
        flow_set=flow_set,
        cycle_time=cycle_time,
        num_periods=num_periods,
        build_seconds=build_seconds,
        solve_seconds=solve_seconds,
        num_variables=model.num_variables,
        num_constraints=model.num_constraints,
        objective_value=result.objective,
        message=result.message,
        traffic_contract=system_contract,
        workload_contract=demand_contract,
    )


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------

def _build_model(
    pool: FlowVariablePool, conjunction: AGContract, options: SynthesisOptions
) -> ConstraintModel:
    model = ConstraintModel(name="agent-flow-synthesis")
    for variable in pool.all_variables():
        model.register(variable)
    for constraint in conjunction.all_constraints():
        model.add_constraint(constraint)
    # The integrality bridge: continuous per-product rates must aggregate to
    # integer agent-slot counts (see flow_variables.py).
    for constraint in pool.coupling_constraints():
        model.add_constraint(constraint)
    if options.objective == "min_agents":
        model.set_objective(pool.total_agents(), sense="min")
    elif options.objective == "min_carrying":
        model.set_objective(pool.total_loaded_flow(), sense="min")
    return model


def _extract_flow_set(
    pool: FlowVariablePool,
    values: Dict,
    cycle_time: int,
    num_periods: int,
    warmup_periods: int,
) -> AgentFlowSet:
    def int_of(var) -> int:
        return int(round(values.get(var, 0.0)))

    def float_of(var) -> float:
        return float(values.get(var, 0.0))

    loaded = {key: int_of(var) for key, var in pool.loaded_vars.items() if int_of(var)}
    empty = {key: int_of(var) for key, var in pool.empty_vars.items() if int_of(var)}
    pickups = {
        key: int_of(var) for key, var in pool.total_pickup_vars.items() if int_of(var)
    }
    dropoffs = {
        key: int_of(var) for key, var in pool.total_dropoff_vars.items() if int_of(var)
    }
    pickup_rates = {
        key: float_of(var)
        for key, var in pool.pickup_vars.items()
        if float_of(var) > 1e-9
    }
    dropoff_rates = {
        key: float_of(var)
        for key, var in pool.dropoff_vars.items()
        if float_of(var) > 1e-9
    }
    return AgentFlowSet(
        system=pool.system,
        cycle_time=cycle_time,
        num_periods=num_periods,
        warmup_periods=warmup_periods,
        loaded_flows=loaded,
        empty_flows=empty,
        pickups=pickups,
        dropoffs=dropoffs,
        pickup_rates=pickup_rates,
        dropoff_rates=dropoff_rates,
    )
