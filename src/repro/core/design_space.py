"""Topology design-space exploration — the "co-design" loop around the pipeline.

The traffic system is a design artifact: the same warehouse floor can be
partitioned into longer or shorter components, and that choice drives the
whole methodology through a single quantity, the longest component ``m``:

* the cycle time is ``tc = 2m``, so fewer, longer components mean fewer cycle
  periods within the timestep limit and therefore *less* delivery capacity;
* but every component supports ``⌊|Ci|/2⌋`` concurrent cycles, so chopping the
  layout into very short components throttles the flow through each of them
  (and costs more agents for the same throughput).

:func:`explore_component_lengths` sweeps the generator's
``max_component_length`` knob for a layout, rebuilds the traffic system at
each setting, derives the capacity analytics, and (optionally) runs the full
pipeline on a reference workload to measure the number of agents and the
synthesis time each design needs.  :func:`best_design` then picks the design
that services the workload with the fewest agents — the simple feasible →
better-design refinement loop the paper lists as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..maps.fulfillment import DesignedWarehouse, FulfillmentLayout, generate_fulfillment_center
from ..warehouse.workload import Workload
from .pipeline import SolverOptions, WSPSolver


class DesignSpaceError(ValueError):
    """Raised for invalid exploration requests."""


@dataclass
class DesignPoint:
    """One evaluated traffic-system design."""

    max_component_length: int
    num_components: int
    longest_component: int
    cycle_time: int
    num_periods: int
    capacity_per_period: int
    total_capacity: int
    capacity_feasible: bool
    num_agents: Optional[int] = None
    synthesis_seconds: Optional[float] = None
    services_workload: Optional[bool] = None
    designed: Optional[DesignedWarehouse] = None

    @property
    def solved(self) -> bool:
        return self.num_agents is not None

    def summary(self) -> str:
        solved = (
            f", agents={self.num_agents}, synthesis={self.synthesis_seconds:.2f}s"
            if self.solved
            else ""
        )
        return (
            f"max_len={self.max_component_length}: m={self.longest_component}, "
            f"{self.num_components} components, tc={self.cycle_time}, "
            f"{self.num_periods} periods, capacity={self.total_capacity}"
            f" ({'ok' if self.capacity_feasible else 'short'}){solved}"
        )


def candidate_lengths(layout: FulfillmentLayout, count: int = 4) -> List[int]:
    """A reasonable sweep of ``max_component_length`` values for a layout.

    Starts at the smallest value that avoids capacity-zero chain pieces and
    grows geometrically up to "no splitting at all" (one serpentine per slice).
    """
    minimum = max(4, layout.slice_width // 2)
    natural = layout.resolved_max_component_length()
    serpentine = (layout.shelf_bands + 1) * (layout.shelf_columns + 2) + layout.shelf_bands
    values = {minimum, natural, serpentine}
    step = max(2, (serpentine - minimum) // max(1, count - 1))
    for value in range(minimum, serpentine + 1, step):
        values.add(value)
    return sorted(values)[: max(count, 3)]


def explore_component_lengths(
    layout: FulfillmentLayout,
    workload_units: int,
    horizon: int,
    lengths: Optional[Sequence[int]] = None,
    solve: bool = True,
    solver_options: Optional[SolverOptions] = None,
) -> List[DesignPoint]:
    """Evaluate the layout at several ``max_component_length`` settings.

    Each design point reports the derived cycle time, period count and
    station-queue delivery capacity; with ``solve=True`` the full pipeline is
    run on a uniform ``workload_units`` workload to measure agents and
    synthesis time (infeasible designs are kept, marked unsolved).
    """
    if workload_units < 0:
        raise DesignSpaceError("workload_units must be non-negative")
    lengths = list(lengths) if lengths is not None else candidate_lengths(layout)
    if not lengths:
        raise DesignSpaceError("no candidate component lengths to explore")

    points: List[DesignPoint] = []
    for max_length in sorted(set(lengths)):
        candidate_layout = replace(layout, max_component_length=max_length)
        designed = generate_fulfillment_center(candidate_layout)
        system = designed.traffic_system
        cycle_time = system.cycle_time()
        num_periods = horizon // cycle_time if cycle_time else 0
        capacity = system.station_throughput_capacity()
        total_capacity = capacity * num_periods
        point = DesignPoint(
            max_component_length=max_length,
            num_components=system.num_components,
            longest_component=system.max_component_length,
            cycle_time=cycle_time,
            num_periods=num_periods,
            capacity_per_period=capacity,
            total_capacity=total_capacity,
            capacity_feasible=total_capacity >= workload_units and num_periods > 0,
            designed=designed,
        )
        if solve and point.capacity_feasible and workload_units > 0:
            workload = Workload.uniform(designed.warehouse.catalog, workload_units)
            solver = WSPSolver(system, solver_options or SolverOptions())
            solution = solver.solve(workload, horizon=horizon)
            if solution.succeeded:
                point.num_agents = solution.num_agents
                point.synthesis_seconds = solution.synthesis_seconds
                point.services_workload = solution.services_workload
        points.append(point)
    return points


def best_design(points: Sequence[DesignPoint]) -> DesignPoint:
    """The solved design needing the fewest agents (ties: shorter cycle time).

    Falls back to the highest-capacity design when nothing was solved.
    """
    if not points:
        raise DesignSpaceError("no design points to choose from")
    solved = [p for p in points if p.solved and (p.services_workload is not False)]
    if solved:
        return min(solved, key=lambda p: (p.num_agents, p.cycle_time))
    return max(points, key=lambda p: p.total_capacity)
