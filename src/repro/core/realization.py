"""Realizing an agent cycle set as a discrete plan (Sec. IV-C, Algorithm 1).

The realizer simulates the warehouse timestep by timestep.  Every component
moves the agents it contains toward its exit (one cell per move; a cell can
only be entered if it was free on the previous timestep, so moves can never
collide or swap); once per cycle period the agent at a component's exit may
advance to the entry of the next component of its agent cycle.  With cycle
time ``tc = 2m`` (``m`` = longest component) and no component loaded beyond
``⌊|Ci|/2⌋`` cycle positions, every agent advances exactly one component per
period (Property 4.1) — the realizer verifies this at every period boundary.

Pickups and drop-offs happen while an agent traverses a component with a
pickup / drop-off action: a pickup grabs the next product from the shelving
row's :class:`~repro.core.agent_cycles.DeliverySchedule` at the first
traversed cell that stocks it; a drop-off hands the carried product over at
the first station cell.  With ``preload_agents`` (the default) agents that
start on the loaded segment of their cycle begin the plan already carrying a
scheduled product, so every cycle delivers from the very first period; the
paper leaves these start-up details unspecified (see DESIGN.md).

The output is a full ``(π, φ)`` :class:`~repro.warehouse.plan.Plan`, which the
independent :class:`~repro.warehouse.plan.PlanValidator` checks against the
three feasibility conditions of Sec. III.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.plan import Plan
from ..warehouse.products import EMPTY_HANDED, ProductId
from .agent_cycles import AgentCycle, AgentCycleSet, DeliverySchedule


class RealizationError(RuntimeError):
    """Raised when an agent cycle set cannot be realized as promised."""


@dataclass(frozen=True)
class RealizationOptions:
    """Knobs of the realization stage."""

    #: Start agents on the loaded segment of their cycle already carrying a
    #: scheduled product.
    preload_agents: bool = True
    #: Raise when an agent fails to advance one component within a period
    #: (Property 4.1 violation); with False the violation is only counted.
    strict_periods: bool = True


@dataclass
class _AgentState:
    """Mutable runtime state of one agent."""

    agent_id: int
    cycle: AgentCycle
    position: int
    component: ComponentId
    vertex: int
    carrying: ProductId
    action_done: bool
    advance_t: int = -1
    #: Product this agent has been assigned to pick up during its current
    #: traversal of a shelving row (popped from the row's delivery schedule
    #: when the agent enters the row).
    target_product: Optional[ProductId] = None


@dataclass
class RealizationResult:
    """The realized plan plus bookkeeping for reports and tests."""

    plan: Plan
    cycle_set: AgentCycleSet
    seconds: float
    deliveries: Dict[ProductId, int]
    pickups: Dict[ProductId, int]
    property41_violations: int

    @property
    def total_delivered(self) -> int:
        return sum(self.deliveries.values())

    def summary(self) -> str:
        return (
            f"realized plan: {self.plan.num_agents} agents, {self.plan.horizon} timesteps, "
            f"{self.total_delivered} units delivered, "
            f"{self.property41_violations} Property-4.1 violations"
        )


def realize_cycle_set(
    cycle_set: AgentCycleSet,
    schedule: DeliverySchedule,
    options: Optional[RealizationOptions] = None,
) -> RealizationResult:
    """Run the component-timestep algorithm and produce a concrete plan."""
    options = options or RealizationOptions()
    start_time = time.perf_counter()
    system = cycle_set.system
    warehouse = system.warehouse
    cycle_set.validate()

    schedule = schedule.copy()
    stock = warehouse.stock.copy()
    agents = _place_agents(cycle_set, schedule, stock, options)
    num_agents = len(agents)
    cycle_time = cycle_set.cycle_time
    periods = cycle_set.num_periods
    horizon = periods * cycle_time + 1

    positions = np.zeros((num_agents, horizon), dtype=np.int64)
    carrying = np.zeros((num_agents, horizon), dtype=np.int64)
    for agent in agents:
        positions[agent.agent_id, 0] = agent.vertex
        carrying[agent.agent_id, 0] = agent.carrying

    agents_by_component: Dict[ComponentId, List[_AgentState]] = {
        c.index: [] for c in system.components
    }
    for agent in agents:
        agents_by_component[agent.component].append(agent)

    deliveries: Dict[ProductId, int] = {}
    pickups: Dict[ProductId, int] = {}
    entered_this_period: Dict[ComponentId, int] = {c.index: 0 for c in system.components}
    violations = 0
    stations = warehouse.station_vertices

    for t in range(horizon - 1):
        period_start = (t // cycle_time) * cycle_time
        if t > 0 and t % cycle_time == 0:
            entered_this_period = {c.index: 0 for c in system.components}
            lagging = [a for a in agents if a.advance_t < t - cycle_time]
            if lagging:
                violations += len(lagging)
                if options.strict_periods:
                    names = ", ".join(
                        f"agent {a.agent_id} in {system.component(a.component).name}"
                        for a in lagging[:5]
                    )
                    raise RealizationError(
                        f"Property 4.1 violated at t={t}: {len(lagging)} agent(s) did not "
                        f"advance during the last period ({names}); "
                        "retry with a larger cycle_time_factor"
                    )

        # Phase 0 — pickups and drop-offs, decided at the time-t vertices (the
        # paper's condition (3) constrains φ_{t+1} by the position π_t, i.e. a
        # product is picked from the shelf the agent stands next to *before*
        # moving); the updated load is recorded at t + 1.
        for agent in agents:
            action = agent.cycle.actions[agent.position]
            if action is None or agent.action_done:
                continue
            if action.is_pickup:
                if agent.carrying != EMPTY_HANDED:
                    agent.action_done = True
                    continue
                product = agent.target_product
                if product is not None and stock.units_at(product, agent.vertex) > 0:
                    stock.remove(product, agent.vertex, 1)
                    agent.carrying = product
                    agent.target_product = None
                    agent.action_done = True
                    pickups[product] = pickups.get(product, 0) + 1
            else:  # drop-off
                if agent.carrying != EMPTY_HANDED and agent.vertex in stations:
                    deliveries[agent.carrying] = deliveries.get(agent.carrying, 0) + 1
                    agent.carrying = EMPTY_HANDED
                    agent.action_done = True

        occupied = {agent.vertex for agent in agents}
        claimed: set = set()

        # Phase 1 — cross-component advances (one eligible front agent per component).
        for component in system.components:
            members = agents_by_component[component.index]
            if not members:
                continue
            front = max(members, key=lambda a: component.position_of(a.vertex))
            if front.vertex != component.exit or front.advance_t >= period_start:
                continue
            next_position = (front.position + 1) % front.cycle.length
            next_component_id = front.cycle.components[next_position]
            next_component = system.component(next_component_id)
            entry = next_component.entry
            if entry in occupied or entry in claimed:
                continue
            if entered_this_period[next_component_id] >= next_component.capacity:
                continue
            members.remove(front)
            agents_by_component[next_component_id].append(front)
            front.component = next_component_id
            front.position = next_position
            front.vertex = entry
            front.advance_t = t + 1
            front.action_done = False
            next_action = front.cycle.actions[next_position]
            if (
                next_action is not None
                and next_action.is_pickup
                and front.carrying == EMPTY_HANDED
            ):
                # Commit the next scheduled unit of this shelving row to the
                # entering agent; it will grab it at the first stocked cell it
                # traverses (FIFO consumption of the delivery schedule).
                front.target_product = schedule.next_product(next_component_id)
            claimed.add(entry)
            entered_this_period[next_component_id] += 1

        # Phase 2 — in-component moves for everyone that did not advance.
        for component in system.components:
            members = sorted(
                agents_by_component[component.index],
                key=lambda a: component.position_of(a.vertex),
                reverse=True,
            )
            for agent in members:
                if agent.advance_t == t + 1:
                    continue  # advanced across components this very timestep
                next_vertex = component.next_vertex(agent.vertex)
                if (
                    next_vertex is not None
                    and next_vertex not in occupied
                    and next_vertex not in claimed
                ):
                    claimed.add(next_vertex)
                    occupied.discard(agent.vertex)
                    agent.vertex = next_vertex

        column = t + 1
        for agent in agents:
            positions[agent.agent_id, column] = agent.vertex
            carrying[agent.agent_id, column] = agent.carrying

    plan = Plan(
        positions=positions,
        carrying=carrying,
        warehouse=warehouse,
        metadata={
            "cycle_time": float(cycle_time),
            "num_periods": float(periods),
            "num_cycles": float(cycle_set.num_cycles),
        },
    )
    return RealizationResult(
        plan=plan,
        cycle_set=cycle_set,
        seconds=time.perf_counter() - start_time,
        deliveries=deliveries,
        pickups=pickups,
        property41_violations=violations,
    )


# ---------------------------------------------------------------------------
# initial placement
# ---------------------------------------------------------------------------

def _place_agents(
    cycle_set: AgentCycleSet,
    schedule: DeliverySchedule,
    stock,
    options: RealizationOptions,
) -> List[_AgentState]:
    """Place one agent per cycle position, spaced out within each component.

    Within a component the agents are parked every other cell starting from the
    exit, which both respects the ⌊|Ci|/2⌋ load bound and lets the front agent
    advance immediately in the first period.
    """
    system = cycle_set.system
    slots: Dict[ComponentId, List[Tuple[AgentCycle, int]]] = {}
    for cycle in cycle_set.cycles:
        for position, component in enumerate(cycle.components):
            slots.setdefault(component, []).append((cycle, position))

    agents: List[_AgentState] = []
    for component_id, component_slots in sorted(slots.items()):
        component = system.component(component_id)
        if len(component_slots) > component.capacity:
            raise RealizationError(
                f"component {component.name!r} hosts {len(component_slots)} cycle positions "
                f"but has capacity {component.capacity}"
            )
        for slot_index, (cycle, position) in enumerate(component_slots):
            vertex_index = component.length - 1 - 2 * slot_index
            vertex = component.vertices[vertex_index]
            carrying, action_done = _initial_load(
                system, cycle, position, schedule, stock, options
            )
            agents.append(
                _AgentState(
                    agent_id=len(agents),
                    cycle=cycle,
                    position=position,
                    component=component_id,
                    vertex=vertex,
                    carrying=carrying,
                    action_done=action_done,
                )
            )
    return agents


def _initial_load(
    system: TrafficSystem,
    cycle: AgentCycle,
    position: int,
    schedule: DeliverySchedule,
    stock,
    options: RealizationOptions,
) -> Tuple[ProductId, bool]:
    """Initial carried product and action state for the agent at a cycle position.

    Agents on the loaded segment (between a pickup and the following drop-off)
    start carrying the next product scheduled at their segment's pickup row;
    the corresponding unit is deducted from that row's stock so the location
    matrix stays consistent.  The agent parked on the drop-off component starts
    loaded with its action still pending, so the first delivery happens in
    period 1.
    """
    if not options.preload_agents:
        return EMPTY_HANDED, False
    action = cycle.actions[position]
    loaded = cycle.is_loaded_at(position)
    if action is not None and action.is_dropoff:
        product = _preload_from_schedule(system, cycle, position, schedule, stock)
        if product is not None:
            return product, False
        return EMPTY_HANDED, False
    if loaded:
        product = _preload_from_schedule(system, cycle, position, schedule, stock)
        if product is not None:
            return product, True
        return EMPTY_HANDED, True
    if action is not None and action.is_pickup:
        # The agent parked on the pickup row counts as having already picked
        # up this period (its unit is the preload of the agent downstream).
        return EMPTY_HANDED, True
    return EMPTY_HANDED, True


def _preload_from_schedule(
    system: TrafficSystem,
    cycle: AgentCycle,
    position: int,
    schedule: DeliverySchedule,
    stock,
) -> Optional[ProductId]:
    """Take the next scheduled product of the segment's pickup row, consuming stock."""
    pickup_position = cycle.preceding_pickup(position)
    row = cycle.components[pickup_position]
    queue = schedule.queues.get(row)
    if not queue:
        return None
    product = queue[0]
    # A preload represents a pickup performed just before the plan starts, so
    # it must be backed by actual stock on the pickup row; otherwise the unit
    # stays in the queue for a regular (possibly never happening) pickup.
    for vertex in system.component(row).vertices:
        if stock.units_at(product, vertex) > 0:
            stock.remove(product, vertex, 1)
            queue.pop(0)
            return product
    return None
