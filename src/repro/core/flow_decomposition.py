"""Mapping an agent flow set to an agent cycle set (Sec. IV-E of the paper).

The synthesized flow set satisfies loaded / empty-handed flow conservation
(Properties 4.2 / 4.3 in aggregate form), so it decomposes into

* *carrying paths*: unit paths of loaded agent flow starting at a shelving row
  with pickups and ending at a station queue with drop-offs; and
* *empty paths*: unit paths of empty-handed flow from station queues back to
  shelving rows.

Pairing each carrying path with an empty path returning from its drop-off
component to its pickup component yields the paper's agent cycles.  An exact
one-to-one pairing need not exist (only the per-endpoint counts are
guaranteed); when it does not, alternating carrying/empty paths are chained
into longer closed walks — an Eulerian-circuit argument over the "path graph"
(one arc per extracted path) shows the chaining always closes, because at
every component the number of incoming path-arcs equals the number of outgoing
ones.  Throughput is unaffected; DESIGN.md records the deviation.

The product dimension is handled by :func:`build_delivery_schedule`, which
turns the continuous per-product pickup rates into per-shelving-row product
queues (time multiplexing of low-demand products across cycle periods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.products import ProductId
from ..warehouse.workload import Workload
from .agent_cycles import (
    DROPOFF,
    PICKUP,
    AgentCycle,
    AgentCycleSet,
    CycleAction,
    CycleError,
    DeliverySchedule,
)
from .flow_synthesis import AgentFlowSet


class DecompositionError(RuntimeError):
    """Raised when a flow set cannot be decomposed (it violates conservation)."""


@dataclass(frozen=True)
class FlowPath:
    """One unit-flow path extracted from the flow set."""

    loaded: bool
    components: Tuple[ComponentId, ...]

    @property
    def start(self) -> ComponentId:
        return self.components[0]

    @property
    def end(self) -> ComponentId:
        return self.components[-1]


# ---------------------------------------------------------------------------
# path extraction
# ---------------------------------------------------------------------------

def _extract_paths(
    system: TrafficSystem,
    edge_flows: Dict[Tuple[ComponentId, ComponentId], int],
    supplies: Dict[ComponentId, int],
    demands: Dict[ComponentId, int],
    loaded: bool,
) -> List[FlowPath]:
    """Decompose one commodity's flow into unit paths from supplies to demands.

    Standard flow decomposition: repeatedly walk from a component with
    remaining supply along arcs with remaining flow until a component with
    remaining demand is reached; circulation loops encountered on the way are
    cancelled so the walk always terminates.
    """
    remaining = dict(edge_flows)
    supplies = dict(supplies)
    demands = dict(demands)
    paths: List[FlowPath] = []
    kind = "loaded" if loaded else "empty"

    def next_hop(component: ComponentId) -> Optional[ComponentId]:
        for outlet in system.outlets_of(component):
            if remaining.get((component, outlet), 0) > 0:
                return outlet
        return None

    for start in sorted(supplies):
        while supplies.get(start, 0) > 0:
            walk = [start]
            positions = {start: 0}
            while True:
                current = walk[-1]
                if demands.get(current, 0) > 0 and len(walk) > 1:
                    break
                hop = next_hop(current)
                if hop is None:
                    raise DecompositionError(
                        f"{kind} flow decomposition stuck at component "
                        f"{system.component(current).name!r}"
                    )
                if hop in positions:
                    # Cancel the circulation loop and continue from its start.
                    loop_start = positions[hop]
                    loop = walk[loop_start:] + [hop]
                    for u, v in zip(loop, loop[1:]):
                        remaining[(u, v)] -= 1
                    for dropped in walk[loop_start + 1 :]:
                        del positions[dropped]
                    walk = walk[: loop_start + 1]
                    continue
                remaining[(current, hop)] -= 1
                walk.append(hop)
                positions[hop] = len(walk) - 1
            supplies[start] -= 1
            demands[walk[-1]] -= 1
            paths.append(FlowPath(loaded=loaded, components=tuple(walk)))
    return paths


def extract_carrying_paths(flow_set: AgentFlowSet) -> List[FlowPath]:
    """Property 4.2 (aggregate): loaded paths from pickup rows to drop-off queues."""
    supplies = {c: v for c, v in flow_set.pickups.items() if v > 0}
    demands = {c: v for c, v in flow_set.dropoffs.items() if v > 0}
    if sum(supplies.values()) != sum(demands.values()):
        raise DecompositionError(
            f"total pickups per period ({sum(supplies.values())}) do not match "
            f"total drop-offs per period ({sum(demands.values())})"
        )
    return _extract_paths(
        flow_set.system, dict(flow_set.loaded_flows), supplies, demands, loaded=True
    )


def extract_empty_paths(flow_set: AgentFlowSet) -> List[FlowPath]:
    """Property 4.3 (aggregate): empty-handed paths from drop-off queues to pickup rows."""
    supplies = {c: v for c, v in flow_set.dropoffs.items() if v > 0}
    demands = {c: v for c, v in flow_set.pickups.items() if v > 0}
    return _extract_paths(
        flow_set.system, dict(flow_set.empty_flows), supplies, demands, loaded=False
    )


# ---------------------------------------------------------------------------
# cycle formation
# ---------------------------------------------------------------------------

def _chain_paths_into_cycles(
    carrying: Sequence[FlowPath], empty: Sequence[FlowPath]
) -> List[List[FlowPath]]:
    """Chain alternating carrying / empty paths into closed walks.

    Exact pairs (an empty path returning straight to the carrying path's start)
    are preferred, giving the paper's one-pickup/one-drop-off cycles; the
    remainder is chained greedily, which always closes because every
    component's incoming and outgoing path counts balance.
    """
    unused_empty: Dict[ComponentId, List[FlowPath]] = {}
    for path in empty:
        unused_empty.setdefault(path.start, []).append(path)
    unused_carrying: Dict[ComponentId, List[FlowPath]] = {}
    for path in carrying:
        unused_carrying.setdefault(path.start, []).append(path)

    chains: List[List[FlowPath]] = []

    def pop_empty(start: ComponentId, preferred_end: Optional[ComponentId]) -> FlowPath:
        bucket = unused_empty.get(start)
        if not bucket:
            raise DecompositionError(
                f"no empty-return path available from component {start}"
            )
        if preferred_end is not None:
            for i, candidate in enumerate(bucket):
                if candidate.end == preferred_end:
                    return bucket.pop(i)
        return bucket.pop()

    def pop_carrying(start: ComponentId) -> FlowPath:
        bucket = unused_carrying.get(start)
        if not bucket:
            raise DecompositionError(
                f"no carrying path available from component {start}"
            )
        return bucket.pop()

    for start in sorted(unused_carrying):
        while unused_carrying.get(start):
            first = pop_carrying(start)
            chain = [first]
            current_end = first.end
            while True:
                empty_path = pop_empty(current_end, preferred_end=chain[0].start)
                chain.append(empty_path)
                if empty_path.end == chain[0].start:
                    break
                chain.append(pop_carrying(empty_path.end))
                current_end = chain[-1].end
            chains.append(chain)
    leftovers = sum(len(b) for b in unused_carrying.values()) + sum(
        len(b) for b in unused_empty.values()
    )
    if leftovers:
        raise DecompositionError(
            f"{leftovers} extracted paths could not be chained into cycles"
        )
    return chains


def _chain_to_cycle(index: int, chain: Sequence[FlowPath]) -> AgentCycle:
    """Convert an alternating closed chain of paths into an :class:`AgentCycle`.

    Each path contributes all of its components except the last one (which is
    the next path's first).  A carrying path's pickup happens at its first
    component; its drop-off happens at its last component, i.e. at the first
    component of the empty path that follows it in the chain.
    """
    components: List[ComponentId] = []
    actions: List[Optional[CycleAction]] = []
    offsets: List[int] = []
    for path in chain:
        offsets.append(len(components))
        span = path.components[:-1]
        components.extend(span)
        actions.extend([None] * len(span))
    for position, path in enumerate(chain):
        if not path.loaded:
            continue
        actions[offsets[position]] = CycleAction(PICKUP)
        drop_offset = offsets[(position + 1) % len(chain)]
        actions[drop_offset] = CycleAction(DROPOFF)
    return AgentCycle(index=index, components=tuple(components), actions=tuple(actions))


def decompose_flow_set(flow_set: AgentFlowSet) -> AgentCycleSet:
    """Map an agent flow set to an agent cycle set (the paper's Sec. IV-E step)."""
    carrying = extract_carrying_paths(flow_set)
    empty = extract_empty_paths(flow_set)
    chains = _chain_paths_into_cycles(carrying, empty)
    cycles = tuple(_chain_to_cycle(i, chain) for i, chain in enumerate(chains))
    return AgentCycleSet(
        system=flow_set.system,
        cycles=cycles,
        cycle_time=flow_set.cycle_time,
        num_periods=flow_set.num_periods,
    )


# ---------------------------------------------------------------------------
# product scheduling
# ---------------------------------------------------------------------------

def build_delivery_schedule(
    flow_set: AgentFlowSet, workload: Workload
) -> DeliverySchedule:
    """Turn continuous per-product pickup rates into per-row product queues.

    The workload's units are allocated to shelving rows proportionally to the
    synthesized pickup rates (respecting local stock), interleaved so every
    product is served from the first periods, and the remaining pickup slots of
    the horizon are padded with the same product mix so cycles keep delivering.
    """
    system = flow_set.system
    demanded = {k: workload.demand(k) for k in workload.requested_products()}

    # Step 1 — integer allocation of each product's demand to rows.
    allocation: Dict[Tuple[ComponentId, ProductId], int] = {}
    row_capacity: Dict[ComponentId, int] = {
        row: flow_set.num_periods * rate for row, rate in flow_set.pickups.items()
    }
    row_used: Dict[ComponentId, int] = {row: 0 for row in row_capacity}
    for product, demand in demanded.items():
        rates = {
            row: rate
            for (row, p), rate in flow_set.pickup_rates.items()
            if p == product and rate > 0 and row in row_capacity
        }
        if not rates:
            raise DecompositionError(
                f"the flow set never picks up product {product} although it is demanded"
            )
        total_rate = sum(rates.values())
        assigned = 0
        shares: List[Tuple[ComponentId, int]] = []
        for row, rate in sorted(rates.items()):
            share = int(demand * rate / total_rate)
            share = min(share, system.units_at(row, product))
            shares.append((row, share))
            assigned += share
        # Distribute the rounding remainder greedily where stock and capacity allow.
        remainder = demand - assigned
        shares_dict = dict(shares)
        candidates = sorted(rates, key=lambda row: -rates[row])
        index = 0
        while remainder > 0 and candidates:
            row = candidates[index % len(candidates)]
            if (
                shares_dict[row] < system.units_at(row, product)
                and row_used[row] + shares_dict[row] < row_capacity[row]
            ):
                shares_dict[row] += 1
                remainder -= 1
            index += 1
            if index > 10 * len(candidates) * (demand + 1):
                raise DecompositionError(
                    f"could not allocate {remainder} remaining units of product {product} "
                    "to shelving rows (insufficient stock or pickup capacity)"
                )
        for row, units in shares_dict.items():
            if units:
                allocation[(row, product)] = units
                row_used[row] += units

    # Step 2 — per-row queues: required units first (interleaved), then padding.
    queues: Dict[ComponentId, List[ProductId]] = {}
    for row, capacity in row_capacity.items():
        row_products = [
            (product, units)
            for (r, product), units in sorted(allocation.items())
            if r == row
        ]
        queue = _interleave(row_products)
        # Padding: keep delivering the same mix for the rest of the horizon so
        # late pickups (whose deliveries would fall outside the horizon) never
        # eat into the required units.
        stock_left = {
            product: system.units_at(row, product) - units
            for product, units in row_products
        }
        pad_source = [product for product, _ in row_products]
        pad_index = 0
        while len(queue) < capacity and pad_source:
            product = pad_source[pad_index % len(pad_source)]
            if stock_left.get(product, 0) > 0:
                queue.append(product)
                stock_left[product] -= 1
            else:
                pad_source = [p for p in pad_source if stock_left.get(p, 0) > 0]
                if not pad_source:
                    break
                continue
            pad_index += 1
        if queue:
            queues[row] = queue
    return DeliverySchedule(queues=queues)


def _interleave(products_with_units: Sequence[Tuple[ProductId, int]]) -> List[ProductId]:
    """Round-robin interleaving, e.g. [(1, 2), (2, 1)] -> [1, 2, 1]."""
    remaining = {product: units for product, units in products_with_units if units > 0}
    order = [product for product, units in products_with_units if units > 0]
    result: List[ProductId] = []
    while remaining:
        for product in list(order):
            if remaining.get(product, 0) > 0:
                result.append(product)
                remaining[product] -= 1
                if remaining[product] == 0:
                    del remaining[product]
    return result
