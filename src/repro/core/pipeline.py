"""End-to-end WSP solver: the methodology of Fig. 2, as one object.

:class:`WSPSolver` wires the stages together:

1. traffic-system design rule check (the system is provided by the map
   generator or the user — co-design means the layout ships with its traffic
   system);
2. agent-flow synthesis (contracts → ILP, Sec. IV-D);
3. flow → agent-cycle decomposition (Sec. IV-E);
4. realization into a concrete, collision-free plan (Sec. IV-C);
5. independent plan validation and workload-service verification.

Each stage's wall-clock time is recorded so the benchmark harness can report
the same "runtime" column as the paper's Table I (which times the flow
synthesis) alongside the full end-to-end time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports core)
    from ..sim.runner import SimulationConfig, SimulationReport

from ..obs import span
from ..solver import SolveStatus
from ..traffic.system import TrafficSystem
from ..traffic.validation import assert_valid
from ..warehouse.plan import Plan, PlanValidationReport, PlanValidator
from ..warehouse.warehouse import WSPInstance
from ..warehouse.workload import Workload
from .agent_cycles import AgentCycleSet, DeliverySchedule
from .flow_decomposition import build_delivery_schedule, decompose_flow_set
from .flow_synthesis import (
    AgentFlowSet,
    FlowSynthesisError,
    FlowSynthesisResult,
    SynthesisOptions,
    synthesize_flows,
)
from .realization import RealizationError, RealizationOptions, RealizationResult, realize_cycle_set


@dataclass(frozen=True)
class SolverOptions:
    """Options of the end-to-end solver."""

    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    realization: RealizationOptions = field(default_factory=RealizationOptions)
    #: Validate the traffic system against the Sec. IV-A design rules first.
    validate_traffic_system: bool = True
    #: Run the independent plan validator on the realized plan.
    validate_plan: bool = True
    #: Retry with a larger cycle-time factor if realization ever violates
    #: Property 4.1 (never needed on the generated maps; kept as a safety net).
    max_cycle_time_factor: int = 4


@dataclass
class WSPSolution:
    """Everything produced by one end-to-end solve."""

    instance: WSPInstance
    traffic_system: TrafficSystem
    synthesis: FlowSynthesisResult
    flow_set: Optional[AgentFlowSet] = None
    cycle_set: Optional[AgentCycleSet] = None
    schedule: Optional[DeliverySchedule] = None
    realization: Optional[RealizationResult] = None
    plan_report: Optional[PlanValidationReport] = None
    #: Filled by :meth:`WSPSolver.simulate` / :meth:`simulate` (stage 6).
    simulation: Optional["SimulationReport"] = None
    timings: Dict[str, float] = field(default_factory=dict)
    message: str = ""

    @property
    def succeeded(self) -> bool:
        return self.plan is not None

    @property
    def plan(self) -> Optional[Plan]:
        return self.realization.plan if self.realization else None

    @property
    def num_agents(self) -> int:
        return self.cycle_set.num_agents if self.cycle_set else 0

    @property
    def services_workload(self) -> bool:
        plan = self.plan
        if plan is None:
            return False
        return plan.services(self.instance.workload)

    @property
    def plan_is_feasible(self) -> bool:
        return self.plan_report.is_feasible if self.plan_report else False

    @property
    def synthesis_seconds(self) -> float:
        """The quantity Table I reports: time to generate the agent flow set."""
        return self.timings.get("synthesis", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def simulate(
        self, config: Optional["SimulationConfig"] = None
    ) -> "SimulationReport":
        """Execute the realized plan in the digital twin (see :mod:`repro.sim`).

        Stores the report on :attr:`simulation`, adds a ``simulation`` entry to
        :attr:`timings`, and returns the report.
        """
        from ..sim.runner import simulate_solution  # local: sim imports core

        report = simulate_solution(self, config)
        self.simulation = report
        self.timings["simulation"] = self.timings.get("simulation", 0.0) + report.seconds
        return report

    def summary(self) -> str:
        if not self.succeeded:
            return f"WSP solve failed: {self.message or self.synthesis.status.value}"
        delivered = self.plan.total_delivered() if self.plan else 0
        return (
            f"WSP solved: {self.num_agents} agents, {delivered} units delivered "
            f"(workload {self.instance.workload.total_units}), "
            f"synthesis {self.synthesis_seconds:.3f}s, total {self.total_seconds:.3f}s"
        )


class WSPSolver:
    """Solve WSP instances on a warehouse with a designed traffic system."""

    def __init__(self, traffic_system: TrafficSystem, options: Optional[SolverOptions] = None):
        self.traffic_system = traffic_system
        self.options = options or SolverOptions()
        if self.options.validate_traffic_system:
            assert_valid(traffic_system)

    def simulate(
        self, solution: WSPSolution, config: Optional["SimulationConfig"] = None
    ) -> "SimulationReport":
        """Stage 6: execute a solved instance's plan in the digital twin.

        Runs the realized plan through :mod:`repro.sim` — order stream, agent
        executors, station service queues, telemetry and the runtime contract
        monitor — and returns the :class:`~repro.sim.runner.SimulationReport`
        (also stored on ``solution.simulation``).  Raises
        :class:`~repro.sim.runner.SimulationSetupError` when the solution has
        no realized plan.
        """
        return solution.simulate(config)

    # -- public API -------------------------------------------------------------
    def solve_instance(self, instance: WSPInstance) -> WSPSolution:
        """Solve a WSP instance end to end."""
        if instance.warehouse is not self.traffic_system.warehouse:
            raise FlowSynthesisError(
                "the instance's warehouse is not the one this solver's traffic system was designed for"
            )
        instance.validate()
        with span(
            "solver.solve",
            map=self.traffic_system.warehouse.name,
            units=instance.workload.total_units,
            horizon=instance.horizon,
        ) as solve_span:
            solution = self._solve_staged(instance, solve_span)
            solve_span.set_attr("succeeded", solution.succeeded)
            for stage, seconds in solution.timings.items():
                solve_span.add(f"seconds.{stage}", seconds)
            return solution

    def _solve_staged(self, instance: WSPInstance, solve_span) -> WSPSolution:
        timings: Dict[str, float] = {}

        factor = self.options.synthesis.cycle_time_factor
        last_message = ""
        synthesis_result: Optional[FlowSynthesisResult] = None
        while factor <= self.options.max_cycle_time_factor:
            base = self.options.synthesis
            synthesis_options = SynthesisOptions(
                backend=base.backend,
                objective=base.objective,
                cycle_time_factor=factor,
                warmup_periods=base.warmup_periods,
                time_limit=base.time_limit,
                check_contracts=base.check_contracts,
            )
            start = time.perf_counter()
            with span("solver.synthesis", backend=base.backend, cycle_time_factor=factor):
                synthesis_result = synthesize_flows(
                    self.traffic_system, instance.workload, instance.horizon, synthesis_options
                )
            timings["synthesis"] = timings.get("synthesis", 0.0) + (
                time.perf_counter() - start
            )
            if not synthesis_result.succeeded:
                return WSPSolution(
                    instance=instance,
                    traffic_system=self.traffic_system,
                    synthesis=synthesis_result,
                    timings=timings,
                    message=(
                        "no agent flow set satisfies the traffic-system and workload contracts: "
                        + (synthesis_result.message or synthesis_result.status.value)
                    ),
                )

            start = time.perf_counter()
            with span("solver.decomposition"):
                cycle_set = decompose_flow_set(synthesis_result.flow_set)
                schedule = build_delivery_schedule(
                    synthesis_result.flow_set, instance.workload
                )
            timings["decomposition"] = timings.get("decomposition", 0.0) + (
                time.perf_counter() - start
            )

            try:
                start = time.perf_counter()
                with span("solver.realization", cycle_time_factor=factor):
                    realization = realize_cycle_set(
                        cycle_set, schedule, self.options.realization
                    )
                timings["realization"] = timings.get("realization", 0.0) + (
                    time.perf_counter() - start
                )
            except RealizationError as error:
                last_message = str(error)
                factor += 1
                solve_span.add("realization_retries")
                continue

            plan_report = None
            if self.options.validate_plan:
                start = time.perf_counter()
                with span("solver.validation"):
                    plan_report = PlanValidator(instance.warehouse).validate(
                        realization.plan
                    )
                timings["validation"] = timings.get("validation", 0.0) + (
                    time.perf_counter() - start
                )

            return WSPSolution(
                instance=instance,
                traffic_system=self.traffic_system,
                synthesis=synthesis_result,
                flow_set=synthesis_result.flow_set,
                cycle_set=cycle_set,
                schedule=schedule,
                realization=realization,
                plan_report=plan_report,
                timings=timings,
                message=last_message,
            )

        return WSPSolution(
            instance=instance,
            traffic_system=self.traffic_system,
            synthesis=synthesis_result,
            timings=timings,
            message=f"realization failed up to cycle-time factor "
            f"{self.options.max_cycle_time_factor}: {last_message}",
        )

    def solve(self, workload: Workload, horizon: int) -> WSPSolution:
        """Convenience wrapper: build the instance and solve it."""
        instance = WSPInstance(self.traffic_system.warehouse, workload, horizon)
        return self.solve_instance(instance)


def solve_wsp(
    traffic_system: TrafficSystem,
    workload: Workload,
    horizon: int,
    options: Optional[SolverOptions] = None,
) -> WSPSolution:
    """One-shot helper: ``WSPSolver(traffic_system, options).solve(workload, horizon)``."""
    return WSPSolver(traffic_system, options).solve(workload, horizon)
