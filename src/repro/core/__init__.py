"""The co-design core: contracts, flow synthesis, cycle decomposition, realization.

The public entry points are :class:`WSPSolver` / :func:`solve_wsp`; the
individual stages are exposed for inspection, testing and ablation:

* :func:`component_contract` / :func:`traffic_system_contract` /
  :func:`workload_contract` — contract compilation (Sec. IV-D);
* :func:`synthesize_flows` — contracts → ILP → :class:`AgentFlowSet`;
* :func:`decompose_flow_set` — flow set → :class:`AgentCycleSet` (Sec. IV-E);
* :func:`realize_cycle_set` — cycle set → collision-free plan (Sec. IV-C).
"""

from .agent_cycles import (
    AgentCycle,
    AgentCycleSet,
    CycleAction,
    CycleError,
    DeliverySchedule,
)
from .component_contracts import component_contract, component_contracts, traffic_system_contract
from .design_space import (
    DesignPoint,
    DesignSpaceError,
    best_design,
    candidate_lengths,
    explore_component_lengths,
)
from .flow_decomposition import (
    DecompositionError,
    FlowPath,
    build_delivery_schedule,
    decompose_flow_set,
    extract_carrying_paths,
    extract_empty_paths,
)
from .flow_synthesis import (
    AgentFlowSet,
    FlowSynthesisError,
    FlowSynthesisResult,
    SynthesisOptions,
    synthesize_flows,
)
from .flow_variables import FlowVariablePool
from .pipeline import SolverOptions, WSPSolution, WSPSolver, solve_wsp
from .realization import (
    RealizationError,
    RealizationOptions,
    RealizationResult,
    realize_cycle_set,
)
from .workload_contract import WorkloadContractError, workload_contract

__all__ = [
    "AgentCycle",
    "AgentCycleSet",
    "AgentFlowSet",
    "CycleAction",
    "CycleError",
    "DecompositionError",
    "DeliverySchedule",
    "DesignPoint",
    "DesignSpaceError",
    "FlowPath",
    "FlowSynthesisError",
    "FlowSynthesisResult",
    "FlowVariablePool",
    "RealizationError",
    "RealizationOptions",
    "RealizationResult",
    "SolverOptions",
    "SynthesisOptions",
    "WSPSolution",
    "WSPSolver",
    "WorkloadContractError",
    "best_design",
    "build_delivery_schedule",
    "candidate_lengths",
    "explore_component_lengths",
    "component_contract",
    "component_contracts",
    "decompose_flow_set",
    "extract_carrying_paths",
    "extract_empty_paths",
    "realize_cycle_set",
    "solve_wsp",
    "synthesize_flows",
    "traffic_system_contract",
    "workload_contract",
]
