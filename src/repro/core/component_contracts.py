"""Component contracts (Sec. IV-D of the paper).

For every traffic-system component ``Ci`` we build an assume-guarantee
contract over the per-cycle-period flow variables:

Assumptions (on the environment, i.e. the components feeding ``Ci``):

* at most ``⌊|Ci| / 2⌋`` agents enter ``Ci`` per cycle period (the capacity
  that makes Algorithm 1's realization guarantee work — Property 4.1);
* flows are non-negative (encoded as variable bounds).

Guarantees (promised by ``Ci``):

* drop-offs only happen at station queues, and never exceed the loaded inflow
  of the corresponding product;
* pickups only happen at shelving rows, never exceed the locally stocked units
  spread over the available cycle periods (``UNITSAT(Ci, ρk) / q_c``), and in
  total never exceed the number of *empty-handed* agents entering;
* per-product and empty-handed flow conservation (agents neither appear nor
  disappear, they only change what they carry).

The traffic-system contract is the composition of all component contracts
(:func:`traffic_system_contract`).
"""

from __future__ import annotations

from typing import List

from ..contracts import AGContract, compose_all
from ..solver.expressions import LinearConstraint
from ..traffic.component import Component
from ..traffic.system import TrafficSystem
from ..warehouse.products import EMPTY_HANDED
from .flow_variables import FlowVariablePool


def component_contract(
    pool: FlowVariablePool,
    component: Component,
    num_periods: int,
) -> AGContract:
    """The contract ``˜Ci`` of one component for a given number of cycle periods."""
    system = pool.system
    index = component.index
    assumptions: List[LinearConstraint] = []
    guarantees: List[LinearConstraint] = []

    # -- assumption: per-period inflow capacity ⌊|Ci|/2⌋ -----------------------
    assumptions.append(
        (pool.total_inflow(index) <= component.capacity).named(f"capacity[{component.name}]")
    )

    # -- guarantees: drop-off bounds -------------------------------------------
    for product in pool.products:
        dropoff = pool.dropoff(index, product)
        if dropoff is None:
            continue
        guarantees.append(
            (1 * dropoff <= pool.inflow(index, product)).named(
                f"dropoff-bound[{component.name},{product}]"
            )
        )

    # -- guarantees: pickup bounds ------------------------------------------------
    for product in pool.products:
        pickup = pool.pickup(index, product)
        if pickup is None:
            continue
        units = system.units_at(index, product)
        per_period_limit = units / max(1, num_periods)
        guarantees.append(
            (1 * pickup <= per_period_limit).named(
                f"pickup-stock[{component.name},{product}]"
            )
        )
    if component.is_shelving_row:
        guarantees.append(
            (pool.total_pickups_expr(index) <= pool.inflow(index, EMPTY_HANDED)).named(
                f"pickup-empty-agents[{component.name}]"
            )
        )

    # -- guarantees: flow conservation ----------------------------------------------
    for product in pool.products:
        balance = pool.inflow(index, product) - pool.outflow(index, product)
        pickup = pool.pickup(index, product)
        dropoff = pool.dropoff(index, product)
        if pickup is not None:
            balance = balance + pickup
        if dropoff is not None:
            balance = balance - dropoff
        guarantees.append(
            (balance == 0).named(f"conservation[{component.name},{product}]")
        )

    empty_balance = (
        pool.inflow(index, EMPTY_HANDED)
        - pool.outflow(index, EMPTY_HANDED)
        - pool.total_pickups_expr(index)
        + pool.total_dropoffs_expr(index)
    )
    guarantees.append(
        (empty_balance == 0).named(f"conservation[{component.name},empty]")
    )

    return AGContract(
        name=f"component[{component.name}]",
        assumptions=tuple(assumptions),
        guarantees=tuple(guarantees),
    )


def traffic_system_contract(pool: FlowVariablePool, num_periods: int) -> AGContract:
    """The traffic-system contract ``˜C_TS = ⨂ ˜Ci`` (composition of all components)."""
    contracts = [
        component_contract(pool, component, num_periods)
        for component in pool.system.components
    ]
    return compose_all(contracts, name="traffic-system")


def component_contracts(pool: FlowVariablePool, num_periods: int) -> List[AGContract]:
    """All individual component contracts (exposed for inspection and tests)."""
    return [
        component_contract(pool, component, num_periods)
        for component in pool.system.components
    ]
