"""Flow variables shared by the component and workload contracts.

An *agent flow* ``f[i, j, k]`` is the number of agents that move from
component ``Ci`` to component ``Cj`` carrying product ``ρk`` in every cycle
period (``k = 0`` means empty-handed); ``f_in[i, k]`` / ``f_out[i, k]`` are the
per-period pickups at a shelving row / drop-offs at a station queue.  The
paper's contracts constrain these quantities with linear arithmetic over the
reals, and that is how they are modelled here: **per-product flows are
continuous variables**.  A product whose demand is far below one unit per
cycle period is then served at a fractional rate — in the realized plan this
becomes time multiplexing (an agent cycle carries different products in
different periods).

Discrete agent cycles, however, need integer *agent-slot* counts.  The pool
therefore also creates the aggregate variables that bridge to the discrete
world (DESIGN.md documents this as the "integrality bridge"):

* ``loaded[i, j]`` (integer)  = Σ_{k ≥ 1} f[i, j, k]
* ``empty[i, j]``  (integer)  = f[i, j, 0]
* ``pickups[i]``   (integer)  = Σ_k f_in[i, k]
* ``dropoffs[i]``  (integer)  = Σ_k f_out[i, k]

Capacity constraints and the cycle decomposition work on the aggregates; the
workload and stock constraints work on the per-product rates.

Variables are created only where they can be non-zero (per-product variables
only for demanded products, pickups only at shelving rows stocking the
product, drop-offs only at station queues), which keeps the 120-product model
compact without changing its meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..solver.expressions import LinearConstraint, LinearExpr, Variable
from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.products import EMPTY_HANDED, ProductId
from ..warehouse.workload import Workload

EdgeKey = Tuple[ComponentId, ComponentId]
ProductEdgeKey = Tuple[ComponentId, ComponentId, ProductId]
NodeKey = Tuple[ComponentId, ProductId]


@dataclass
class FlowVariablePool:
    """Registry of the flow variables of one synthesis problem."""

    system: TrafficSystem
    products: Tuple[ProductId, ...]
    #: Per-product, per-edge flow rates (continuous); includes k = 0 (empty).
    edge_vars: Dict[ProductEdgeKey, Variable] = field(default_factory=dict)
    #: Per-product pickup / drop-off rates (continuous).
    pickup_vars: Dict[NodeKey, Variable] = field(default_factory=dict)
    dropoff_vars: Dict[NodeKey, Variable] = field(default_factory=dict)
    #: Integer aggregates (the agent slots the realization will use).
    loaded_vars: Dict[EdgeKey, Variable] = field(default_factory=dict)
    empty_vars: Dict[EdgeKey, Variable] = field(default_factory=dict)
    total_pickup_vars: Dict[ComponentId, Variable] = field(default_factory=dict)
    total_dropoff_vars: Dict[ComponentId, Variable] = field(default_factory=dict)

    @staticmethod
    def for_workload(system: TrafficSystem, workload: Workload) -> "FlowVariablePool":
        """Create the pool for a workload: empty-handed + demanded products."""
        products = workload.requested_products()
        pool = FlowVariablePool(system=system, products=products)
        pool._populate()
        return pool

    # -- population -----------------------------------------------------------
    def _populate(self) -> None:
        carried = (EMPTY_HANDED,) + tuple(self.products)
        for source, target in self.system.edges():
            capacity = self.system.component(target).capacity
            for product in carried:
                self.edge_vars[(source, target, product)] = Variable(
                    name=f"f[{source},{target},{product}]",
                    lb=0,
                    ub=capacity,
                    integer=False,
                )
            self.loaded_vars[(source, target)] = Variable(
                name=f"loaded[{source},{target}]", lb=0, ub=capacity, integer=True
            )
            self.empty_vars[(source, target)] = Variable(
                name=f"empty[{source},{target}]", lb=0, ub=capacity, integer=True
            )
        for component in self.system.shelving_rows():
            any_stock = False
            for product in self.products:
                if self.system.units_at(component.index, product) > 0:
                    any_stock = True
                    self.pickup_vars[(component.index, product)] = Variable(
                        name=f"fin[{component.index},{product}]",
                        lb=0,
                        ub=component.capacity,
                        integer=False,
                    )
            if any_stock:
                self.total_pickup_vars[component.index] = Variable(
                    name=f"pickups[{component.index}]",
                    lb=0,
                    ub=component.capacity,
                    integer=True,
                )
        for component in self.system.station_queues():
            for product in self.products:
                self.dropoff_vars[(component.index, product)] = Variable(
                    name=f"fout[{component.index},{product}]",
                    lb=0,
                    ub=component.capacity,
                    integer=False,
                )
            self.total_dropoff_vars[component.index] = Variable(
                name=f"dropoffs[{component.index}]",
                lb=0,
                ub=component.capacity,
                integer=True,
            )

    # -- variable access --------------------------------------------------------
    def edge(self, source: ComponentId, target: ComponentId, product: ProductId) -> Optional[Variable]:
        return self.edge_vars.get((source, target, product))

    def pickup(self, component: ComponentId, product: ProductId) -> Optional[Variable]:
        return self.pickup_vars.get((component, product))

    def dropoff(self, component: ComponentId, product: ProductId) -> Optional[Variable]:
        return self.dropoff_vars.get((component, product))

    def loaded(self, source: ComponentId, target: ComponentId) -> Optional[Variable]:
        return self.loaded_vars.get((source, target))

    def empty(self, source: ComponentId, target: ComponentId) -> Optional[Variable]:
        return self.empty_vars.get((source, target))

    def total_pickup(self, component: ComponentId) -> Optional[Variable]:
        return self.total_pickup_vars.get(component)

    def total_dropoff(self, component: ComponentId) -> Optional[Variable]:
        return self.total_dropoff_vars.get(component)

    def all_variables(self) -> List[Variable]:
        return (
            list(self.edge_vars.values())
            + list(self.pickup_vars.values())
            + list(self.dropoff_vars.values())
            + list(self.loaded_vars.values())
            + list(self.empty_vars.values())
            + list(self.total_pickup_vars.values())
            + list(self.total_dropoff_vars.values())
        )

    @property
    def num_variables(self) -> int:
        return len(self.all_variables())

    # -- expression builders ------------------------------------------------------
    def inflow(self, component: ComponentId, product: ProductId) -> LinearExpr:
        """Σ over inlets of f[j, i, product]."""
        terms = []
        for inlet in self.system.inlets_of(component):
            var = self.edge(inlet, component, product)
            if var is not None:
                terms.append(var)
        return LinearExpr.sum(terms)

    def outflow(self, component: ComponentId, product: ProductId) -> LinearExpr:
        """Σ over outlets of f[i, j, product]."""
        terms = []
        for outlet in self.system.outlets_of(component):
            var = self.edge(component, outlet, product)
            if var is not None:
                terms.append(var)
        return LinearExpr.sum(terms)

    def total_inflow(self, component: ComponentId) -> LinearExpr:
        """Σ over inlets of the aggregate (loaded + empty) agent flow."""
        terms = []
        for inlet in self.system.inlets_of(component):
            loaded = self.loaded(inlet, component)
            empty = self.empty(inlet, component)
            if loaded is not None:
                terms.append(loaded)
            if empty is not None:
                terms.append(empty)
        return LinearExpr.sum(terms)

    def total_pickups_expr(self, component: ComponentId) -> LinearExpr:
        terms = [var for (comp, _), var in self.pickup_vars.items() if comp == component]
        return LinearExpr.sum(terms)

    def total_dropoffs_expr(self, component: ComponentId) -> LinearExpr:
        terms = [var for (comp, _), var in self.dropoff_vars.items() if comp == component]
        return LinearExpr.sum(terms)

    def total_station_dropoffs(self, product: ProductId) -> LinearExpr:
        """Σ over all station queues of f_out[i, product]."""
        terms = [var for (_, prod), var in self.dropoff_vars.items() if prod == product]
        return LinearExpr.sum(terms)

    def total_agents(self) -> LinearExpr:
        """Σ of every aggregate edge flow — equals the number of agents in the plan."""
        return LinearExpr.sum(
            list(self.loaded_vars.values()) + list(self.empty_vars.values())
        )

    def total_loaded_flow(self) -> LinearExpr:
        """Σ of loaded aggregate flows (used by the 'min_carrying' objective)."""
        return LinearExpr.sum(self.loaded_vars.values())

    # -- integrality bridge --------------------------------------------------------
    def coupling_constraints(self) -> List[LinearConstraint]:
        """The constraints tying continuous per-product rates to integer aggregates."""
        constraints: List[LinearConstraint] = []
        for (source, target), loaded in self.loaded_vars.items():
            product_sum = LinearExpr.sum(
                self.edge_vars[(source, target, product)]
                for product in self.products
                if (source, target, product) in self.edge_vars
            )
            constraints.append(
                (product_sum - loaded == 0).named(f"couple-loaded[{source},{target}]")
            )
        for (source, target), empty in self.empty_vars.items():
            empty_rate = self.edge_vars[(source, target, EMPTY_HANDED)]
            constraints.append(
                (1 * empty_rate - empty == 0).named(f"couple-empty[{source},{target}]")
            )
        for component, total in self.total_pickup_vars.items():
            constraints.append(
                (self.total_pickups_expr(component) - total == 0).named(
                    f"couple-pickups[{component}]"
                )
            )
        for component, total in self.total_dropoff_vars.items():
            constraints.append(
                (self.total_dropoffs_expr(component) - total == 0).named(
                    f"couple-dropoffs[{component}]"
                )
            )
        return constraints
