"""The workload contract (Sec. IV-D of the paper).

A workload contract makes no assumptions and guarantees that, for every
product ``ρk`` with demand ``w_k``, the total per-period station drop-off flow
is at least ``w_k / q_c`` where ``q_c`` is the number of cycle periods that
fit in the timestep limit ``T``.

We additionally support a *warm-up margin*: the realization's agent cycles
only start delivering once their pipelines are primed, so the pipeline
reserves ``warmup_periods`` periods by dividing the demand over
``q_c - warmup_periods`` periods instead.  With agent preloading enabled
(see :mod:`repro.core.realization`) one period of margin is enough to cover
every rounding and start-up effect; setting the margin to zero recovers the
paper's formula verbatim.
"""

from __future__ import annotations

from ..contracts import AGContract
from ..warehouse.workload import Workload
from .flow_variables import FlowVariablePool


class WorkloadContractError(ValueError):
    """Raised when a workload cannot be expressed for the given horizon."""


def workload_contract(
    pool: FlowVariablePool,
    workload: Workload,
    num_periods: int,
    warmup_periods: int = 0,
) -> AGContract:
    """Build the workload contract ``˜C_w`` for ``num_periods`` cycle periods."""
    if num_periods <= 0:
        raise WorkloadContractError(
            "the timestep limit T is shorter than a single cycle period; "
            "increase T or reduce the longest component"
        )
    effective = num_periods - warmup_periods
    if effective <= 0:
        raise WorkloadContractError(
            f"warm-up margin ({warmup_periods} periods) leaves no usable periods "
            f"out of {num_periods}"
        )
    guarantees = []
    for product in workload.requested_products():
        demand = workload.demand(product)
        required_rate = demand / effective
        guarantees.append(
            (pool.total_station_dropoffs(product) >= required_rate).named(
                f"workload[{product}]"
            )
        )
    return AGContract(name="workload", assumptions=(), guarantees=tuple(guarantees))
