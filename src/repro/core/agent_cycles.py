"""Agent cycles, agent cycle sets, and delivery schedules (Sec. IV-B of the paper).

An *agent cycle* is a closed walk through the traffic-system graph that
contains at least one target shelving row (where its agents pick products up)
and one target station queue (where they drop products off).  The cycle hosts
one agent per walk position; every cycle period each agent advances one
position, so one agent crosses every pickup point and every drop-off point per
period — the cycle delivers one unit per pickup/drop-off pair per period.

*Which* product a pickup grabs is governed by a :class:`DeliverySchedule`: a
per-shelving-row queue of product ids derived from the synthesized per-product
flow rates and the workload.  This realizes the time multiplexing implied by
the paper's real-valued flow rates (a product demanded at a fractional
per-period rate is simply scheduled in a fraction of the periods); DESIGN.md
documents the interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..traffic.system import ComponentId, TrafficSystem
from ..warehouse.products import ProductId

#: Cycle action kinds.
PICKUP = "pickup"
DROPOFF = "dropoff"


class CycleError(ValueError):
    """Raised for malformed agent cycles or cycle sets."""


@dataclass(frozen=True)
class CycleAction:
    """A pickup or drop-off performed at one position of an agent cycle."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (PICKUP, DROPOFF):
            raise CycleError(f"unknown cycle action kind {self.kind!r}")

    @property
    def is_pickup(self) -> bool:
        return self.kind == PICKUP

    @property
    def is_dropoff(self) -> bool:
        return self.kind == DROPOFF


@dataclass(frozen=True)
class AgentCycle:
    """A closed walk of components with pickup / drop-off actions.

    ``components[p]`` is the component hosting the cycle's ``p``-th agent at
    the start of the plan; ``actions[p]`` is the action performed whenever an
    agent of the cycle traverses that position (or ``None``).
    """

    index: int
    components: Tuple[ComponentId, ...]
    actions: Tuple[Optional[CycleAction], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise CycleError("an agent cycle needs at least one component")
        if len(self.actions) != len(self.components):
            raise CycleError("actions and components must have the same length")
        picked = sum(1 for a in self.actions if a and a.is_pickup)
        dropped = sum(1 for a in self.actions if a and a.is_dropoff)
        if picked == 0 or dropped == 0:
            raise CycleError(
                "an agent cycle must contain a target shelving row (pickup) and "
                "a target station queue (drop-off)"
            )
        if picked != dropped:
            raise CycleError(
                f"cycle {self.index} has {picked} pickups but {dropped} drop-offs"
            )
        self._check_alternation()

    def _check_alternation(self) -> None:
        """Pickups and drop-offs must alternate around the walk.

        Otherwise an agent would be asked to pick up while already loaded or
        drop off while empty.
        """
        first_action = next(
            (p for p, a in enumerate(self.actions) if a is not None), None
        )
        if first_action is None:  # pragma: no cover - excluded above
            raise CycleError("cycle has no actions")
        expected: Optional[str] = None
        for offset in range(self.length):
            action = self.actions[(first_action + offset) % self.length]
            if action is None:
                continue
            if expected is not None and action.kind != expected:
                raise CycleError(
                    f"cycle {self.index}: consecutive {action.kind} actions "
                    "(pickups and drop-offs must alternate)"
                )
            expected = DROPOFF if action.is_pickup else PICKUP

    # -- shape -----------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of walk positions b — also the number of agents in the cycle."""
        return len(self.components)

    @property
    def num_agents(self) -> int:
        return self.length

    @property
    def deliveries_per_period(self) -> int:
        """One delivery per drop-off action per cycle period."""
        return sum(1 for a in self.actions if a and a.is_dropoff)

    def pickup_positions(self) -> Tuple[int, ...]:
        return tuple(p for p, a in enumerate(self.actions) if a and a.is_pickup)

    def dropoff_positions(self) -> Tuple[int, ...]:
        return tuple(p for p, a in enumerate(self.actions) if a and a.is_dropoff)

    def pickup_components(self) -> Tuple[ComponentId, ...]:
        return tuple(self.components[p] for p in self.pickup_positions())

    def dropoff_components(self) -> Tuple[ComponentId, ...]:
        return tuple(self.components[p] for p in self.dropoff_positions())

    def is_loaded_at(self, position: int) -> bool:
        """Whether an agent leaving ``position`` is carrying a product.

        Positions strictly between a pickup and the following drop-off are
        loaded; the pickup position itself counts as loaded (the pickup happens
        while traversing it), the drop-off position as empty.
        """
        for offset in range(self.length):
            probe = (position - offset) % self.length
            action = self.actions[probe]
            if action is None:
                continue
            return action.is_pickup
        return False  # pragma: no cover - cycles always have actions

    def preceding_pickup(self, position: int) -> int:
        """The position of the pickup governing the load at ``position``."""
        for offset in range(self.length):
            probe = (position - offset) % self.length
            action = self.actions[probe]
            if action is not None and action.is_pickup:
                return probe
        raise CycleError("cycle has no pickup action")  # pragma: no cover

    def summary(self) -> str:
        return (
            f"cycle {self.index}: {self.length} components, "
            f"{self.deliveries_per_period} deliveries/period"
        )


@dataclass
class DeliverySchedule:
    """Per-shelving-row queues of products to hand out at pickup time.

    ``queues[row]`` lists the products, in order, that successive pickups at
    that shelving-row component should grab.  The required workload units come
    first (interleaved across products so every product is served early); the
    remainder of the horizon's pickup slots is padded with the same product mix
    so cycles keep delivering (the realized plan may over-deliver, never
    under-deliver).
    """

    queues: Dict[ComponentId, List[ProductId]] = field(default_factory=dict)

    def next_product(self, row: ComponentId) -> Optional[ProductId]:
        """Pop the next product to pick at ``row`` (None when exhausted)."""
        queue = self.queues.get(row)
        if queue:
            return queue.pop(0)
        return None

    def remaining(self, row: Optional[ComponentId] = None) -> int:
        if row is not None:
            return len(self.queues.get(row, []))
        return sum(len(queue) for queue in self.queues.values())

    def scheduled_units(self) -> Dict[ProductId, int]:
        totals: Dict[ProductId, int] = {}
        for queue in self.queues.values():
            for product in queue:
                totals[product] = totals.get(product, 0) + 1
        return totals

    def copy(self) -> "DeliverySchedule":
        return DeliverySchedule({row: list(queue) for row, queue in self.queues.items()})


@dataclass
class AgentCycleSet:
    """A set of agent cycles with a common cycle time."""

    system: TrafficSystem
    cycles: Tuple[AgentCycle, ...]
    cycle_time: int
    num_periods: int

    # -- aggregates -------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return sum(cycle.num_agents for cycle in self.cycles)

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    def deliveries_per_period(self) -> int:
        return sum(cycle.deliveries_per_period for cycle in self.cycles)

    def expected_deliveries(self) -> int:
        return self.deliveries_per_period() * self.num_periods

    def component_load(self) -> Dict[ComponentId, int]:
        """Number of cycle positions on each component (agents parked there at t = 0)."""
        load: Dict[ComponentId, int] = {}
        for cycle in self.cycles:
            for component in cycle.components:
                load[component] = load.get(component, 0) + 1
        return load

    def pickups_per_period(self, row: ComponentId) -> int:
        """Number of cycle pickup positions on a shelving row."""
        return sum(
            1
            for cycle in self.cycles
            for position in cycle.pickup_positions()
            if cycle.components[position] == row
        )

    # -- validation ----------------------------------------------------------------
    def check_capacity(self) -> List[str]:
        """Property 4.1 precondition: no component used by more than ⌊|Ci|/2⌋ cycle positions."""
        problems = []
        for component_id, load in sorted(self.component_load().items()):
            component = self.system.component(component_id)
            if load > component.capacity:
                problems.append(
                    f"{component.name}: {load} cycle positions exceed capacity "
                    f"⌊{component.length}/2⌋ = {component.capacity}"
                )
        return problems

    def check_connectivity(self) -> List[str]:
        """Every consecutive pair of cycle components must be a traffic-system arc."""
        problems = []
        edges = set(self.system.edges())
        for cycle in self.cycles:
            for position in range(cycle.length):
                source = cycle.components[position]
                target = cycle.components[(position + 1) % cycle.length]
                if (source, target) not in edges:
                    problems.append(
                        f"cycle {cycle.index}: ({self.system.component(source).name} -> "
                        f"{self.system.component(target).name}) is not a traffic-system connection"
                    )
        return problems

    def check_kinds(self) -> List[str]:
        """Pickups must sit on shelving rows, drop-offs on station queues."""
        problems = []
        for cycle in self.cycles:
            for position in cycle.pickup_positions():
                component = self.system.component(cycle.components[position])
                if not component.is_shelving_row:
                    problems.append(
                        f"cycle {cycle.index}: pickup on non-shelving component {component.name!r}"
                    )
            for position in cycle.dropoff_positions():
                component = self.system.component(cycle.components[position])
                if not component.is_station_queue:
                    problems.append(
                        f"cycle {cycle.index}: drop-off on non-station component {component.name!r}"
                    )
        return problems

    def validate(self) -> None:
        problems = self.check_capacity() + self.check_connectivity() + self.check_kinds()
        if problems:
            raise CycleError("invalid agent cycle set:\n  " + "\n  ".join(problems))

    def summary(self) -> str:
        return (
            f"agent cycle set: {self.num_cycles} cycles, {self.num_agents} agents, "
            f"{self.deliveries_per_period()} deliveries/period over {self.num_periods} periods"
        )
