"""Command-line interface.

The CLI exposes the common workflows without writing Python:

* ``python -m repro maps`` — list the built-in map presets and their statistics;
* ``python -m repro show --map NAME`` — render a map's traffic system (Fig. 4/5 view);
* ``python -m repro solve --map NAME --units N [--horizon T]`` — run the full
  pipeline on a preset and print a solution report (optionally saving the plan);
* ``python -m repro table1`` — regenerate the paper's Table I (small presets by
  default, ``--paper-scale`` for the full-size maps);
* ``python -m repro validate --plan plan.json`` — re-validate a saved plan
  against the three feasibility conditions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    BenchmarkRow,
    compute_plan_metrics,
    render_traffic_system,
    table1_report,
)
from .core import SolverOptions, SynthesisOptions, WSPSolver
from .io import load_json, plan_from_dict, plan_to_dict, save_json, save_map
from .maps import MAP_REGISTRY, PAPER_MAP_STATS
from .warehouse import PlanValidator, Workload

#: The Table-I instance sets at both scales (map preset -> (units, horizon)).
TABLE1_PAPER = {
    "sorting-center": ((160, 320, 480), 3600),
    "fulfillment-1": ((550, 825, 1100), 3600),
    "fulfillment-2": ((1200, 1320, 1440), 3600),
}
TABLE1_SMALL = {
    "sorting-center-small": ((16, 32, 48), 1500),
    "fulfillment-1-small": ((24, 36, 48), 1500),
    "fulfillment-2-small": ((36, 48, 60), 1500),
}


def _designed(name: str):
    if name not in MAP_REGISTRY:
        raise SystemExit(
            f"unknown map {name!r}; available: {', '.join(sorted(MAP_REGISTRY))}"
        )
    obj = MAP_REGISTRY[name]()
    return obj.designed if hasattr(obj, "designed") else obj


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_maps(_: argparse.Namespace) -> int:
    print(f"{'preset':<24s} {'cells':>6s} {'shelves':>8s} {'stations':>9s} {'products':>9s} {'components':>11s}")
    for name in sorted(MAP_REGISTRY):
        designed = _designed(name)
        grid = designed.warehouse.floorplan.grid
        system = designed.traffic_system
        print(
            f"{name:<24s} {grid.width * grid.height:>6d} {grid.num_shelves:>8d} "
            f"{grid.num_stations:>9d} {designed.warehouse.num_products:>9d} "
            f"{system.num_components:>11d}"
        )
        if name in PAPER_MAP_STATS:
            cells, shelves, stations, products = PAPER_MAP_STATS[name]
            print(
                f"{'  (paper)':<24s} {cells:>6d} {shelves:>8d} {stations:>9d} {products:>9d}"
            )
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    designed = _designed(args.map)
    print(designed.warehouse.summary())
    print(designed.traffic_system.summary())
    print()
    print(render_traffic_system(designed.traffic_system))
    if args.save_map:
        save_map(designed.warehouse.floorplan.grid, args.save_map)
        print(f"\nmap written to {args.save_map}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    designed = _designed(args.map)
    warehouse = designed.warehouse
    workload = Workload.uniform(warehouse.catalog, args.units)
    options = SolverOptions(
        synthesis=SynthesisOptions(backend=args.backend, objective=args.objective)
    )
    solver = WSPSolver(designed.traffic_system, options)
    solution = solver.solve(workload, horizon=args.horizon)
    if not solution.succeeded:
        print(f"INFEASIBLE: {solution.message}")
        return 1
    print(solution.summary())
    print(f"plan feasible:      {solution.plan_is_feasible}")
    print(f"workload serviced:  {solution.services_workload}")
    metrics = compute_plan_metrics(solution.plan, workload)
    print(f"service makespan:   {metrics.service_makespan}")
    print(f"agents:             {metrics.num_agents}")
    print(f"throughput:         {metrics.throughput:.3f} units/timestep")
    for stage, seconds in sorted(solution.timings.items()):
        print(f"  {stage:<14s} {seconds:8.3f}s")
    if args.save_plan:
        save_json(plan_to_dict(solution.plan), args.save_plan)
        print(f"plan written to {args.save_plan}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    table = TABLE1_PAPER if args.paper_scale else TABLE1_SMALL
    rows: List[BenchmarkRow] = []
    for map_name, (workloads, horizon) in table.items():
        designed = _designed(map_name)
        solver = WSPSolver(designed.traffic_system)
        for units in workloads:
            workload = Workload.uniform(designed.warehouse.catalog, units)
            solution = solver.solve(workload, horizon=horizon)
            if not solution.succeeded:
                print(f"{map_name}/{units}: INFEASIBLE — {solution.message}")
                continue
            rows.append(
                BenchmarkRow(
                    map_name=map_name,
                    unique_products=designed.warehouse.num_products,
                    units_moved=units,
                    runtime_seconds=solution.synthesis_seconds,
                    num_agents=solution.num_agents,
                    units_delivered=solution.plan.total_delivered(),
                    plan_feasible=solution.plan_is_feasible,
                    workload_serviced=solution.services_workload,
                )
            )
            print(
                f"{map_name:<22s} units={units:5d}  synthesis={solution.synthesis_seconds:7.2f}s  "
                f"agents={solution.num_agents}"
            )
    print()
    print(table1_report(rows, markdown=args.markdown))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    plan = plan_from_dict(load_json(args.plan))
    report = PlanValidator(plan.warehouse).validate(plan)
    print(plan.summary())
    print(report.summary())
    for violation in report.violations[:20]:
        print(f"  {violation}")
    return 0 if report.is_feasible else 1


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contract-based co-design of warehouse traffic systems (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    maps_parser = subparsers.add_parser("maps", help="list built-in map presets")
    maps_parser.set_defaults(handler=cmd_maps)

    show_parser = subparsers.add_parser("show", help="render a map's traffic system")
    show_parser.add_argument("--map", required=True, help="map preset name")
    show_parser.add_argument("--save-map", help="also write the grid in .map format")
    show_parser.set_defaults(handler=cmd_show)

    solve_parser = subparsers.add_parser("solve", help="solve a WSP instance on a preset map")
    solve_parser.add_argument("--map", required=True, help="map preset name")
    solve_parser.add_argument("--units", type=int, required=True, help="total workload units")
    solve_parser.add_argument("--horizon", type=int, default=3600, help="timestep limit T")
    solve_parser.add_argument("--backend", default="highs", help="ILP backend (highs, bnb, simplex-bnb)")
    solve_parser.add_argument(
        "--objective", default="min_agents", choices=("none", "min_agents", "min_carrying")
    )
    solve_parser.add_argument("--save-plan", help="write the realized plan as JSON")
    solve_parser.set_defaults(handler=cmd_solve)

    table1_parser = subparsers.add_parser("table1", help="regenerate the paper's Table I")
    table1_parser.add_argument("--paper-scale", action="store_true", help="use the paper-scale presets")
    table1_parser.add_argument("--markdown", action="store_true", help="emit a markdown table")
    table1_parser.set_defaults(handler=cmd_table1)

    validate_parser = subparsers.add_parser("validate", help="validate a saved plan")
    validate_parser.add_argument("--plan", required=True, help="plan JSON file")
    validate_parser.set_defaults(handler=cmd_validate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
