"""Command-line interface.

The CLI exposes the common workflows without writing Python:

* ``python -m repro maps`` — list the built-in map presets and their statistics;
* ``python -m repro show --map NAME`` — render a map's traffic system (Fig. 4/5 view);
* ``python -m repro solve --map NAME --units N [--horizon T]`` — run the full
  pipeline on a preset and print a solution report (optionally saving the plan);
* ``python -m repro simulate --map NAME --units N [--seed S]`` — solve, then
  execute the realized plan in the discrete-event digital twin and print the
  simulation report (throughput vs. the synthesized flow, order latencies,
  contract-monitor verdict, congestion heatmap); ``--routing ROUTER`` swaps
  the abstract plan replay for grid-routed motion planned by a MAPF router
  (prioritized, cbs, ecbs or windowed lifelong replanning); ``--disruptions
  SPEC`` injects stochastic failures (agent breakdowns/slowdowns, station
  outages, blocked aisles, demand surges) with online recovery and prints the
  resilience telemetry (throughput retention, recovery latency, breach
  windows) plus a disruption timeline;
* ``python -m repro table1`` — regenerate the paper's Table I (small presets by
  default, ``--paper-scale`` for the full-size maps);
* ``python -m repro sweep`` — generate a parametric scenario suite and run the
  solve→simulate pipeline over it on a worker pool, appending one JSONL record
  per run (``--report`` aggregates a result file, ``--compare`` diffs two
  result files for regressions);
* ``python -m repro optimize`` — closed-loop design search: perturb a
  scenario's slotting/layout knobs, score every candidate through the
  solve→simulate pipeline (cached, parallel, or against a ``repro serve``
  fleet), and keep the best design; seeded, resumable (``--log``/
  ``--resume``), with an ASCII convergence trace and a JSON report;
* ``python -m repro serve`` — boot the long-lived serving layer: an HTTP
  front end (submit/status/result/health/metrics, NDJSON batch streaming)
  over a content-addressed result cache (in-memory LRU + optional persistent
  JSONL tier, single-flight coalescing) and a bounded worker pool with
  explicit backpressure; SIGINT/SIGTERM drain gracefully;
* ``python -m repro loadtest`` — drive a running service through
  cold/warm(/overload) phases with concurrent clients and print the latency/
  throughput/hit-rate report (optionally writing ``BENCH_service.json``);
* ``python -m repro top`` — live curses-free ANSI dashboard: poll a running
  service's ``/dashboard`` snapshot (pool saturation, cache hit-rate, request
  states, latency, recent events) or tail an in-progress sweep's ``--events``
  JSONL file (progress, pass rate, ETA, disruptions/breaches);
* ``python -m repro profile solve|simulate|sweep`` — run a pipeline target
  under the span tracer and cProfile at once and print the span tree, the
  top-k span hotspots by self time, and the C-level function table
  (``--save-trace`` writes the span tree as JSON);
* ``python -m repro validate --plan plan.json`` — re-validate a saved plan
  against the three feasibility conditions.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
from typing import List, Optional, Sequence

from .analysis import (
    BenchmarkRow,
    compare_sweeps,
    compute_plan_metrics,
    compute_sim_metrics,
    render_congestion,
    render_disruption_timeline,
    render_edge_heatmap,
    render_traffic_system,
    sweep_report,
    table1_report,
    throughput_gap_report,
)
from .core import SolverOptions, SynthesisOptions, WSPSolver
from .experiments import (
    PRESET_SUITES,
    ResultStore,
    ScenarioError,
    SweepOptions,
    load_records,
    parse_service_time,
    preset_scenarios,
    run_sweep,
)
from .analysis.service import loadtest_report as render_loadtest_report
from .io import load_json, plan_from_dict, plan_to_dict, save_json, save_map, trace_to_dict
from .maps import MAP_REGISTRY, PAPER_MAP_STATS
from .sim import (
    ROUTERS,
    DisruptionError,
    OrderStreamError,
    RoutingConfig,
    ServiceTimeModel,
    SimulationConfig,
    SimulationSetupError,
    parse_disruptions,
)
from .warehouse import PlanValidator, Workload
from .warehouse.warehouse import WarehouseError
from .warehouse.workload import WorkloadError

#: The Table-I instance sets at both scales (map preset -> (units, horizon)).
TABLE1_PAPER = {
    "sorting-center": ((160, 320, 480), 3600),
    "fulfillment-1": ((550, 825, 1100), 3600),
    "fulfillment-2": ((1200, 1320, 1440), 3600),
}
TABLE1_SMALL = {
    "sorting-center-small": ((16, 32, 48), 1500),
    "fulfillment-1-small": ((24, 36, 48), 1500),
    "fulfillment-2-small": ((36, 48, 60), 1500),
}


def _designed(name: str):
    if name not in MAP_REGISTRY:
        raise SystemExit(
            f"unknown map {name!r}; available: {', '.join(sorted(MAP_REGISTRY))}"
        )
    obj = MAP_REGISTRY[name]()
    return obj.designed if hasattr(obj, "designed") else obj


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_maps(_: argparse.Namespace) -> int:
    print(f"{'preset':<24s} {'cells':>6s} {'shelves':>8s} {'stations':>9s} {'products':>9s} {'components':>11s}")
    for name in sorted(MAP_REGISTRY):
        designed = _designed(name)
        grid = designed.warehouse.floorplan.grid
        system = designed.traffic_system
        print(
            f"{name:<24s} {grid.width * grid.height:>6d} {grid.num_shelves:>8d} "
            f"{grid.num_stations:>9d} {designed.warehouse.num_products:>9d} "
            f"{system.num_components:>11d}"
        )
        if name in PAPER_MAP_STATS:
            cells, shelves, stations, products = PAPER_MAP_STATS[name]
            print(
                f"{'  (paper)':<24s} {cells:>6d} {shelves:>8d} {stations:>9d} {products:>9d}"
            )
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    designed = _designed(args.map)
    print(designed.warehouse.summary())
    print(designed.traffic_system.summary())
    print()
    print(render_traffic_system(designed.traffic_system))
    if args.save_map:
        save_map(designed.warehouse.floorplan.grid, args.save_map)
        print(f"\nmap written to {args.save_map}")
    return 0


def _solve_preset(args: argparse.Namespace):
    """Shared solve preamble of ``solve`` / ``simulate``: preset -> solution.

    Exits with a clean message on structurally invalid instances (e.g. demand
    exceeding stock); returns ``(designed, workload, solver, solution)``.
    """
    designed = _designed(args.map)
    options = SolverOptions(
        synthesis=SynthesisOptions(backend=args.backend, objective=args.objective)
    )
    solver = WSPSolver(designed.traffic_system, options)
    try:
        workload = Workload.uniform(designed.warehouse.catalog, args.units)
        solution = solver.solve(workload, horizon=args.horizon)
    except (WarehouseError, WorkloadError) as error:
        raise SystemExit(f"invalid instance: {error}")
    return designed, workload, solver, solution


def cmd_solve(args: argparse.Namespace) -> int:
    _, workload, _, solution = _solve_preset(args)
    if not solution.succeeded:
        print(f"INFEASIBLE: {solution.message}")
        return 1
    print(solution.summary())
    print(f"plan feasible:      {solution.plan_is_feasible}")
    print(f"workload serviced:  {solution.services_workload}")
    metrics = compute_plan_metrics(solution.plan, workload)
    print(f"service makespan:   {metrics.service_makespan}")
    print(f"agents:             {metrics.num_agents}")
    print(f"throughput:         {metrics.throughput:.3f} units/timestep")
    for stage, seconds in sorted(solution.timings.items()):
        print(f"  {stage:<14s} {seconds:8.3f}s")
    if args.save_plan:
        save_json(plan_to_dict(solution.plan), args.save_plan)
        print(f"plan written to {args.save_plan}")
    return 0


def _parse_service_time(spec: str) -> ServiceTimeModel:
    """``"0"`` / ``"uniform:2,6"`` / ``"geometric:4"`` -> a service-time model."""
    try:
        return parse_service_time(spec)
    except ScenarioError as error:
        raise SystemExit(f"invalid --service-time: {error}")


def cmd_simulate(args: argparse.Namespace) -> int:
    # `not (x > 0)` also rejects NaN, which `x <= 0` would let through.
    if args.arrival_rate is not None and not args.arrival_rate > 0:
        raise SystemExit(
            f"--arrival-rate must be positive (got {args.arrival_rate:g}); "
            "omit it for the deterministic all-at-t0 workload"
        )
    if args.routing_window < 0:
        raise SystemExit(
            f"--routing-window must be non-negative (got {args.routing_window})"
        )
    if args.routing == "abstract" and args.routing_window:
        raise SystemExit(
            "--routing-window only applies to grid routers; pass --routing "
            "prioritized|cbs|ecbs|lifelong alongside it"
        )
    routing = (
        None
        if args.routing == "abstract"
        else RoutingConfig(router=args.routing, window=args.routing_window)
    )
    try:
        disruptions = parse_disruptions(args.disruptions)
    except DisruptionError as error:
        raise SystemExit(f"invalid --disruptions: {error}")
    config = SimulationConfig(
        seed=args.seed,
        service_time=_parse_service_time(args.service_time),
        arrival_rate=args.arrival_rate,
        routing=routing,
        disruptions=disruptions,
    )
    designed, _, solver, solution = _solve_preset(args)
    warehouse = designed.warehouse
    if not solution.succeeded:
        print(f"INFEASIBLE: {solution.message}")
        return 1
    print(solution.summary())
    print()
    try:
        report = solver.simulate(solution, config)
    except (OrderStreamError, SimulationSetupError) as error:
        raise SystemExit(f"invalid simulation config: {error}")
    print(report.summary())
    metrics = compute_sim_metrics(report.trace)
    print(f"  verdict:             {throughput_gap_report(metrics)}")
    for stage, seconds in sorted(solution.timings.items()):
        print(f"  {stage:<14s} {seconds:8.3f}s")
    if report.resilience is not None:
        print()
        print("Disruption timeline (event density over simulated time):")
        print(render_disruption_timeline(report.trace))
    if args.heatmap:
        print()
        print("Congestion (agent-ticks per cell; '#' shelves, '@' obstacles):")
        print(render_congestion(warehouse, report.trace.visits))
        if report.routing is not None:
            print()
            print("Edge congestion (crossings per cell, grid-routed motion):")
            print(render_edge_heatmap(warehouse, report.routing.edge_traversals))
    if args.save_trace:
        save_json(trace_to_dict(report.trace), args.save_trace)
        print(f"\ntrace written to {args.save_trace}")
    return 0 if report.contracts_ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    table = TABLE1_PAPER if args.paper_scale else TABLE1_SMALL
    rows: List[BenchmarkRow] = []
    for map_name, (workloads, horizon) in table.items():
        designed = _designed(map_name)
        solver = WSPSolver(designed.traffic_system)
        for units in workloads:
            workload = Workload.uniform(designed.warehouse.catalog, units)
            solution = solver.solve(workload, horizon=horizon)
            if not solution.succeeded:
                print(f"{map_name}/{units}: INFEASIBLE — {solution.message}")
                continue
            rows.append(
                BenchmarkRow(
                    map_name=map_name,
                    unique_products=designed.warehouse.num_products,
                    units_moved=units,
                    runtime_seconds=solution.synthesis_seconds,
                    num_agents=solution.num_agents,
                    units_delivered=solution.plan.total_delivered(),
                    plan_feasible=solution.plan_is_feasible,
                    workload_serviced=solution.services_workload,
                )
            )
            print(
                f"{map_name:<22s} units={units:5d}  synthesis={solution.synthesis_seconds:7.2f}s  "
                f"agents={solution.num_agents}"
            )
    print()
    print(table1_report(rows, markdown=args.markdown))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.report and args.compare:
        raise SystemExit("--report and --compare are mutually exclusive")
    if (args.report or args.compare) and args.out:
        raise SystemExit("--out only applies when running a sweep, not with --report/--compare")
    if args.report:
        records = load_records(args.report)
        print(sweep_report(records, markdown=args.markdown))
        return 0
    if args.compare:
        if not args.tolerance > 0:
            raise SystemExit(f"--tolerance must be positive (got {args.tolerance:g})")
        baseline_path, candidate_path = args.compare
        comparison = compare_sweeps(
            load_records(baseline_path),
            load_records(candidate_path),
            runtime_factor=args.tolerance,
        )
        print(comparison.summary())
        return 0 if comparison.ok else 1

    if args.workers < 1:
        raise SystemExit(f"--workers must be at least 1 (got {args.workers})")
    if args.limit < 0:
        raise SystemExit(f"--limit must be non-negative (got {args.limit})")
    from .obs import AlertError, AlertMonitor, get_event_log, get_registry, parse_rules

    try:
        alert_rules = parse_rules(args.alert or ())
    except AlertError as error:
        raise SystemExit(f"--alert: {error}") from error
    specs = preset_scenarios(args.preset, seed=args.seed)
    if args.limit > 0:
        specs = specs[: args.limit]
    # Pure append: an existing file may hold older-schema or partial lines,
    # which must not prevent adding this sweep's records.
    store = ResultStore(args.out, load_existing=False) if args.out else None
    print(
        f"sweep {args.preset!r}: {len(specs)} scenario(s), "
        f"{args.workers} worker(s)"
        + (f", {args.timeout:g}s/run timeout" if args.timeout else "")
        + (f", events -> {args.events}" if args.events else "")
    )

    # The progress line is *driven by the event stream*: each finished run
    # emits a sweep.progress event, and the callback drains the subscription
    # synchronously so lines never interleave with the final report.
    events = get_event_log()
    subscription = None if args.quiet else events.subscribe()
    started = time.monotonic()
    pass_counts = {"total": 0, "ok": 0}

    def progress(_record) -> None:
        if subscription is None:
            return
        while True:
            event = subscription.get(timeout=0)
            if event is None:
                break
            if event.kind != "sweep.progress":
                continue
            fields = event.fields
            completed = int(fields.get("completed", 0))
            total = int(fields.get("total", 0)) or 1
            pass_counts["total"] = completed
            if fields.get("status") == "ok":
                pass_counts["ok"] += 1
            elapsed = time.monotonic() - started
            eta = elapsed / completed * (total - completed) if completed else 0.0
            rate = 100.0 * pass_counts["ok"] / completed if completed else 0.0
            print(
                f"  [{completed}/{total}] pass {rate:3.0f}% "
                f"elapsed {elapsed:5.1f}s eta {eta:5.1f}s | "
                f"{fields.get('status', '?'):<10s} {event.message}",
                flush=True,
            )

    monitor = (
        AlertMonitor(lambda: get_registry().snapshot(), alert_rules, interval=0.5)
        if alert_rules
        else None
    )
    if monitor is not None:
        monitor.start()
    try:
        records = run_sweep(
            specs,
            SweepOptions(
                workers=args.workers,
                timeout_seconds=args.timeout,
                events_path=args.events,
            ),
            store=store,
            progress=progress,
        )
    finally:
        if monitor is not None:
            monitor.stop()
        if subscription is not None:
            events.unsubscribe(subscription)
    print()
    print(sweep_report(records, markdown=args.markdown))
    if args.out:
        print(f"\n{len(records)} record(s) appended to {args.out}")
    if monitor is not None:
        print()
        print(monitor.summary())
        if monitor.any_fired:
            return 1
    return 0 if not any(record.failed for record in records) else 1


def cmd_optimize(args: argparse.Namespace) -> int:
    from .analysis.optimize import optimize_report
    from .obs import EventLog, get_event_log, get_registry
    from .optimize import (
        CachedEvaluator,
        OptimizeError,
        RemoteEvaluator,
        make_objective,
        make_optimizer,
        preset_space,
        run_campaign,
    )

    if args.report:
        print(optimize_report(load_json(args.report), markdown=args.markdown))
        return 0
    if args.budget < 1:
        raise SystemExit(f"--budget must be at least 1 evaluation (got {args.budget})")
    if args.workers < 0:
        raise SystemExit(f"--workers must be non-negative (got {args.workers})")
    if args.resume and not args.log:
        raise SystemExit("--resume needs --log (the campaign file to resume from)")
    try:
        space = preset_space(args.preset, seed=args.space_seed)
        options = (
            {"batch_size": args.batch}
            if args.optimizer == "hill"
            else {"initial_temperature": args.temperature, "cooling": args.cooling}
        )
        optimizer = make_optimizer(args.optimizer, **options)
        objective = make_objective(
            args.objective, violation_weight=args.violation_weight
        )
    except OptimizeError as error:
        raise SystemExit(str(error)) from error

    if args.url:
        evaluator = RemoteEvaluator(args.url, timeout=args.timeout or 300.0)
        mode = f"fleet of {len(args.url)} replica(s)"
    else:
        evaluator = CachedEvaluator(
            workers=args.workers,
            store_path=args.store,
            timeout_seconds=args.timeout,
        )
        mode = (
            f"{args.workers} local worker(s)" if args.workers else "in-process"
        )
    events = EventLog(capacity=2048, path=args.events) if args.events else get_event_log()
    print(
        f"optimize {args.preset!r}: {optimizer.name}/{objective.name}, "
        f"budget {args.budget}, seed {args.seed}, {mode}"
        + (f", log -> {args.log}" if args.log else "")
    )

    def progress(record, replayed: bool) -> None:
        if args.quiet:
            return
        marker = "replay" if replayed else ("accept" if record.accepted else "reject")
        star = " *" if record.improved else ""
        print(
            f"  [{record.evaluations}/{args.budget}] step {record.step}: "
            f"chosen {record.chosen_score:.4f} ({marker}) "
            f"best {record.best_score:.4f}{star}",
            flush=True,
        )

    try:
        result = run_campaign(
            space,
            optimizer,
            objective,
            evaluator,
            budget=args.budget,
            seed=args.seed,
            log_path=args.log,
            resume=args.resume,
            events=events,
            registry=get_registry(),
            progress=progress,
        )
    except OptimizeError as error:
        raise SystemExit(str(error)) from error
    finally:
        evaluator.close()
    print()
    print(optimize_report(result.to_dict(), markdown=args.markdown))
    if args.out:
        save_json(result.to_dict(), args.out)
        print(f"\nreport written to {args.out}")
    return 0 if result.best_score >= result.baseline_score else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import PreforkServer, ServiceConfig, ServiceServer

    if args.workers < 1:
        raise SystemExit(f"--workers must be at least 1 (got {args.workers})")
    if args.http_workers < 1:
        raise SystemExit(f"--http-workers must be at least 1 (got {args.http_workers})")
    if args.max_pending < 0:
        raise SystemExit(f"--max-pending must be non-negative (got {args.max_pending})")
    if args.cache_capacity < 1:
        raise SystemExit(f"--cache-capacity must be at least 1 (got {args.cache_capacity})")
    if args.cache_shards < 1:
        raise SystemExit(f"--cache-shards must be at least 1 (got {args.cache_shards})")
    if args.max_body_bytes < 1:
        raise SystemExit(f"--max-body-bytes must be positive (got {args.max_body_bytes})")
    if args.timeout is not None and not args.timeout > 0:
        raise SystemExit(f"--timeout must be positive (got {args.timeout:g})")
    from .obs import AlertError, parse_rules

    try:
        parse_rules(args.alert or ())  # fail fast on malformed rule specs
    except AlertError as error:
        raise SystemExit(f"--alert: {error}") from error
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        cache_capacity=args.cache_capacity,
        cache_shards=args.cache_shards,
        max_body_bytes=args.max_body_bytes,
        http_workers=args.http_workers,
        timeout_seconds=args.timeout,
        store_path=args.store,
        events_path=args.events,
        alert_rules=tuple(args.alert or ()),
        alert_interval=args.alert_interval,
    )
    if config.http_workers > 1:
        # Multi-process pre-fork accept loop; requires --store to share the
        # warm tier across workers (memory caches are per-process).
        server = PreforkServer(config, quiet=not args.verbose)
    else:
        server = ServiceServer(config, quiet=not args.verbose)
    server.start()
    # The port line is machine-read by the CI smoke job and the tests.
    print(f"repro service listening on {server.url}", flush=True)
    print(
        f"  http_workers={config.http_workers} workers={config.workers} "
        f"max_pending={config.max_pending} "
        f"cache={config.cache_capacity}x{config.cache_shards}sh"
        + (f" store={config.store_path}" if config.store_path else "")
        + (f" events={config.events_path}" if config.events_path else "")
        + (f" alerts={len(config.alert_rules)}" if config.alert_rules else ""),
        flush=True,
    )

    stop_requested = threading.Event()

    def request_stop(signum, _frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining ...", flush=True)
        stop_requested.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, request_stop)
    try:
        # Wait with a timeout: a bare Event.wait() parks the main thread in an
        # uninterruptible lock acquire and the signal handler never runs.
        while not stop_requested.wait(timeout=0.5):
            pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    drained = server.stop(drain_timeout=args.drain_timeout)
    print("service stopped" + ("" if drained else " (drain timed out)"), flush=True)
    return 0 if drained else 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    from .obs import AlertError, AlertMonitor, baseline_rule, parse_rules
    from .service import (
        LoadTestOptions,
        ServiceClient,
        ServiceClientError,
        run_loadtest,
        run_saturation,
    )

    urls = list(args.url) if args.url else ["http://127.0.0.1:8321"]
    if args.clients < 1:
        raise SystemExit(f"--clients must be at least 1 (got {args.clients})")
    if args.requests < 1:
        raise SystemExit(f"--requests must be at least 1 (got {args.requests})")
    if args.limit < 0:
        raise SystemExit(f"--limit must be non-negative (got {args.limit})")
    saturation_grid: list = []
    if args.saturation:
        try:
            saturation_grid = [int(part) for part in args.saturation.split(",") if part.strip()]
        except ValueError:
            raise SystemExit(f"--saturation must be a comma list of client counts (got {args.saturation!r})")
        if not saturation_grid or any(count < 1 for count in saturation_grid):
            raise SystemExit(f"--saturation needs positive client counts (got {args.saturation!r})")
    try:
        alert_rules = parse_rules(args.alert or ())
        if args.alert_baseline:
            alert_rules.append(
                baseline_rule(args.alert_baseline, factor=args.baseline_factor)
            )
    except (AlertError, OSError) as error:
        raise SystemExit(f"--alert: {error}") from error
    specs = [spec for spec in preset_scenarios(args.preset, seed=args.seed) if spec.is_valid()]
    if args.limit > 0:
        specs = specs[: args.limit]
    if not specs:
        raise SystemExit(f"preset {args.preset!r} produced no valid scenarios to request")
    options = LoadTestOptions(
        clients=args.clients,
        requests_per_client=args.requests,
        overload=args.overload,
        overload_requests=args.overload_requests,
        timeout=args.request_timeout,
    )
    print(
        f"loadtest {', '.join(urls)}: {len(specs)} scenario(s), {args.clients} client(s), "
        f"{args.requests} warm request(s)/client"
        + (", overload phase enabled" if args.overload else "")
        + (f", saturation grid {saturation_grid}" if saturation_grid else "")
    )
    # One health probe per replica before driving load: fail fast on a wrong
    # URL, and show what is actually serving (version, uptime, drain state).
    for url in urls:
        try:
            with ServiceClient(url, timeout=10.0) as probe:
                health = probe.health()
        except ServiceClientError as error:
            raise SystemExit(f"service not reachable at {url}: {error}") from error
        print(
            f"  {url}: {health.get('status', '?')} v{health.get('version', '?')} "
            f"up {health.get('uptime_seconds', 0.0):.0f}s "
            f"workers={health.get('workers', '?')} "
            f"draining={str(health.get('draining', False)).lower()}",
            flush=True,
        )

    def scrape():
        try:
            with ServiceClient(urls[0], timeout=10.0) as client:
                return client.metrics().get("registry")
        except ServiceClientError:
            return None

    monitor = (
        AlertMonitor(scrape, alert_rules, interval=args.alert_interval)
        if alert_rules
        else None
    )
    if monitor is not None:
        monitor.start()
    try:
        report = run_loadtest(urls, specs, options)
        if saturation_grid:
            report.saturation = run_saturation(
                urls,
                specs,
                clients_grid=saturation_grid,
                duration=args.saturation_duration,
                http_workers=args.saturation_workers,
                timeout=args.request_timeout,
            )
    finally:
        if monitor is not None:
            monitor.stop()
    print()
    print(render_loadtest_report(report, markdown=args.markdown))
    if args.out:
        save_json(report.to_dict(), args.out)
        print(f"\nreport written to {args.out}")
    ok, _ = report.acceptable()
    if monitor is not None:
        print()
        print(monitor.summary())
        if monitor.any_fired:
            return 1
    return 0 if ok else 1


def cmd_top(args: argparse.Namespace) -> int:
    from .analysis.dashboard import (
        CLEAR_SCREEN,
        render_service_frame,
        render_sweep_frame,
    )

    if args.interval <= 0:
        raise SystemExit(f"--interval must be positive (got {args.interval:g})")
    color = sys.stdout.isatty() and not args.no_color

    def frame() -> Optional[str]:
        if args.events:
            from .obs import read_events

            return render_sweep_frame(
                read_events(args.events), now=time.time(), color=color
            )
        from .service import ServiceClient, ServiceClientError

        try:
            with ServiceClient(args.url, timeout=10.0) as client:
                return render_service_frame(client.dashboard(), color=color)
        except ServiceClientError as error:
            if args.once:
                raise SystemExit(f"service not reachable at {args.url}: {error}")
            return None  # keep polling: top should survive a server restart

    if args.once:
        print(frame(), end="", flush=True)
        return 0
    try:
        while True:
            rendered = frame()
            print(
                CLEAR_SCREEN
                + (rendered if rendered is not None else f"waiting for {args.url} ...\n")
                + f"\n(refresh {args.interval:g}s, ctrl-c to quit)",
                end="",
                flush=True,
            )
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print(flush=True)
        return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.obs import hotspot_report, span_tree_table
    from .obs import profile_call

    if args.top < 1:
        raise SystemExit(f"--top must be at least 1 (got {args.top})")

    if args.target == "sweep":
        if args.limit < 0:
            raise SystemExit(f"--limit must be non-negative (got {args.limit})")
        specs = preset_scenarios(args.preset, seed=args.seed)
        if args.limit > 0:
            specs = specs[: args.limit]
        print(f"profiling sweep {args.preset!r}: {len(specs)} scenario(s)")

        def task():
            return run_sweep(specs)

    else:
        designed = _designed(args.map)
        options = SolverOptions(
            synthesis=SynthesisOptions(backend=args.backend, objective=args.objective)
        )
        solver = WSPSolver(designed.traffic_system, options)
        try:
            workload = Workload.uniform(designed.warehouse.catalog, args.units)
        except (WarehouseError, WorkloadError) as error:
            raise SystemExit(f"invalid instance: {error}")
        if args.target == "solve":
            print(f"profiling solve: map={args.map} units={args.units}")

            def task():
                return solver.solve(workload, horizon=args.horizon)

        else:
            routing = (
                None
                if args.routing == "abstract"
                else RoutingConfig(router=args.routing)
            )
            try:
                disruptions = parse_disruptions(args.disruptions)
            except DisruptionError as error:
                raise SystemExit(f"invalid --disruptions: {error}")
            config = SimulationConfig(
                seed=args.seed,
                record_events=False,
                routing=routing,
                disruptions=disruptions,
            )
            print(
                f"profiling simulate: map={args.map} units={args.units} "
                f"routing={args.routing}"
            )

            def task():
                solution = solver.solve(workload, horizon=args.horizon)
                if not solution.succeeded:
                    raise SystemExit(f"INFEASIBLE: {solution.message}")
                return solver.simulate(solution, config)

    result = profile_call(task, use_cprofile=not args.no_cprofile, top=args.top)
    document = result.trace.to_dict()
    print()
    print("Span tree (total/self wall time per pipeline phase):")
    print(span_tree_table(document))
    print()
    print(f"Top {args.top} span hotspots by self time:")
    print(hotspot_report(document, top=args.top))
    if not args.no_cprofile:
        print()
        print(f"Top {args.top} functions ({args.sort}) — cProfile:")
        print(result.function_table(top=args.top, sort=args.sort))
    if args.save_trace:
        save_json(document, args.save_trace)
        print(f"\ntrace written to {args.save_trace}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    plan = plan_from_dict(load_json(args.plan))
    report = PlanValidator(plan.warehouse).validate(plan)
    print(plan.summary())
    print(report.summary())
    for violation in report.violations[:20]:
        print(f"  {violation}")
    return 0 if report.is_feasible else 1


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------

def _package_version() -> str:
    """The installed distribution's version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-warehouse-codesign")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contract-based co-design of warehouse traffic systems (DATE 2023 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    maps_parser = subparsers.add_parser("maps", help="list built-in map presets")
    maps_parser.set_defaults(handler=cmd_maps)

    show_parser = subparsers.add_parser("show", help="render a map's traffic system")
    show_parser.add_argument("--map", required=True, help="map preset name")
    show_parser.add_argument("--save-map", help="also write the grid in .map format")
    show_parser.set_defaults(handler=cmd_show)

    solve_parser = subparsers.add_parser("solve", help="solve a WSP instance on a preset map")
    solve_parser.add_argument("--map", required=True, help="map preset name")
    solve_parser.add_argument("--units", type=int, required=True, help="total workload units")
    solve_parser.add_argument("--horizon", type=int, default=3600, help="timestep limit T")
    solve_parser.add_argument("--backend", default="highs", help="ILP backend (highs, bnb, simplex-bnb)")
    solve_parser.add_argument(
        "--objective", default="min_agents", choices=("none", "min_agents", "min_carrying")
    )
    solve_parser.add_argument("--save-plan", help="write the realized plan as JSON")
    solve_parser.set_defaults(handler=cmd_solve)

    simulate_parser = subparsers.add_parser(
        "simulate", help="solve a preset, then execute the plan in the digital twin"
    )
    simulate_parser.add_argument("--map", required=True, help="map preset name")
    simulate_parser.add_argument("--units", type=int, required=True, help="total workload units")
    simulate_parser.add_argument("--horizon", type=int, default=3600, help="timestep limit T")
    simulate_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    simulate_parser.add_argument("--backend", default="highs", help="ILP backend")
    simulate_parser.add_argument(
        "--objective", default="min_agents", choices=("none", "min_agents", "min_carrying")
    )
    simulate_parser.add_argument(
        "--service-time",
        default="0",
        help="station service time per unit: N, uniform:LO,HI or geometric:MEAN (ticks)",
    )
    simulate_parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="Poisson order arrivals per tick (default: all orders at t=0)",
    )
    simulate_parser.add_argument(
        "--routing",
        default="abstract",
        choices=ROUTERS,
        help="execution mode: abstract plan replay, or grid-routed motion "
        "via a MAPF router (prioritized, cbs, ecbs, lifelong)",
    )
    simulate_parser.add_argument(
        "--routing-window",
        type=int,
        default=0,
        help="steps committed per replanning episode (0 = router default)",
    )
    simulate_parser.add_argument(
        "--disruptions",
        default="none",
        help="failure injection spec: comma-separated kind:rate[:duration] "
        "entries (breakdown, slowdown, outage, block, surge) plus deadline:N "
        "and norecover; e.g. 'breakdown:0.02:25,block:0.01'",
    )
    simulate_parser.add_argument(
        "--heatmap", action="store_true", help="print the congestion heatmap"
    )
    simulate_parser.add_argument("--save-trace", help="write the simulation trace as JSON")
    simulate_parser.set_defaults(handler=cmd_simulate)

    table1_parser = subparsers.add_parser("table1", help="regenerate the paper's Table I")
    table1_parser.add_argument("--paper-scale", action="store_true", help="use the paper-scale presets")
    table1_parser.add_argument("--markdown", action="store_true", help="emit a markdown table")
    table1_parser.set_defaults(handler=cmd_table1)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a scenario sweep in parallel, or report on result files"
    )
    sweep_parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESET_SUITES),
        help="scenario suite to run",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, help="per-run wall-clock budget (seconds)"
    )
    sweep_parser.add_argument("--seed", type=int, default=0, help="suite base seed")
    sweep_parser.add_argument(
        "--limit", type=int, default=0, help="run only the first N scenarios"
    )
    sweep_parser.add_argument("--out", help="append one JSONL record per run to this file")
    sweep_parser.add_argument(
        "--report", help="skip running; aggregate an existing JSONL result file"
    )
    sweep_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="skip running; diff two result files for regressions",
    )
    sweep_parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="--compare: flag runs slower than TOLERANCE x baseline",
    )
    sweep_parser.add_argument("--markdown", action="store_true", help="emit markdown tables")
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-run progress/ETA lines"
    )
    sweep_parser.add_argument(
        "--events",
        help="append structured events (sweep/run lifecycle, sim disruptions) "
        "to this JSONL file; workers share the sink, `repro top --events` tails it",
    )
    sweep_parser.add_argument(
        "--alert",
        action="append",
        metavar="RULE",
        help="alert rule evaluated over live metrics, e.g. "
        "'repro_runs_total{status=error} > 0'; repeatable; any firing "
        "rule makes the sweep exit non-zero",
    )
    sweep_parser.set_defaults(handler=cmd_sweep)

    optimize_parser = subparsers.add_parser(
        "optimize",
        help="closed-loop design search: perturb a scenario, re-simulate, keep if better",
    )
    from .optimize import OBJECTIVES, OPTIMIZE_PRESETS, OPTIMIZERS

    optimize_parser.add_argument(
        "--preset",
        default="slotting-small",
        choices=sorted(OPTIMIZE_PRESETS),
        help="design-space preset (base scenario + search knobs)",
    )
    optimize_parser.add_argument(
        "--optimizer",
        default="anneal",
        choices=sorted(OPTIMIZERS),
        help="search strategy",
    )
    optimize_parser.add_argument(
        "--objective",
        default="throughput",
        choices=sorted(OBJECTIVES),
        help="score maximized over candidate designs",
    )
    optimize_parser.add_argument(
        "--budget",
        type=int,
        default=24,
        help="total pipeline evaluations (baseline included)",
    )
    optimize_parser.add_argument("--seed", type=int, default=0, help="search rng seed")
    optimize_parser.add_argument(
        "--space-seed", type=int, default=0, help="base scenario seed of the preset"
    )
    optimize_parser.add_argument(
        "--batch", type=int, default=4, help="hill climbing: neighbors per step"
    )
    optimize_parser.add_argument(
        "--temperature",
        type=float,
        default=0.02,
        help="annealing: initial temperature",
    )
    optimize_parser.add_argument(
        "--cooling", type=float, default=0.92, help="annealing: geometric cooling factor"
    )
    optimize_parser.add_argument(
        "--violation-weight",
        type=float,
        default=0.1,
        help="objective penalty per contract violation",
    )
    optimize_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="local evaluation worker processes (0: evaluate in-process)",
    )
    optimize_parser.add_argument(
        "--url",
        action="append",
        help="evaluate candidates on a running `repro serve` replica; repeat "
        "to drive a fleet round-robin",
    )
    optimize_parser.add_argument(
        "--store",
        help="persistent JSONL result store backing the evaluation cache "
        "(re-visited designs across campaigns become warm hits)",
    )
    optimize_parser.add_argument(
        "--timeout", type=float, default=None, help="per-evaluation compute budget (s)"
    )
    optimize_parser.add_argument(
        "--log",
        help="campaign JSONL trajectory log (header + one line per step); "
        "enables --resume",
    )
    optimize_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from --log by replaying it "
        "(logged scores are reused, nothing re-evaluates)",
    )
    optimize_parser.add_argument(
        "--out", help="write the full optimize-report JSON to this file"
    )
    optimize_parser.add_argument(
        "--report",
        help="skip searching; render an existing optimize-report JSON file",
    )
    optimize_parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    optimize_parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-step progress lines"
    )
    optimize_parser.add_argument(
        "--events",
        help="append optimize.* structured events to this JSONL file "
        "(`repro top --events` tails it)",
    )
    optimize_parser.set_defaults(handler=cmd_optimize)

    serve_parser = subparsers.add_parser(
        "serve", help="boot the concurrent solve/simulate serving layer"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8321, help="bind port (0 for an ephemeral port)"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="worker processes computing cold requests"
    )
    serve_parser.add_argument(
        "--http-workers",
        type=int,
        default=1,
        help="HTTP server processes; >1 boots the pre-fork accept loop "
        "(SO_REUSEPORT or a shared listener) with one full service per process "
        "— pair with --store so the workers share a warm tier",
    )
    serve_parser.add_argument(
        "--cache-shards",
        type=int,
        default=8,
        help="independently-locked result-cache shards (keyed by scenario_id prefix)",
    )
    serve_parser.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="largest accepted request body; bigger Content-Lengths get HTTP 413",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="cold requests allowed to queue beyond the computing ones "
        "(one more is rejected with 429 + Retry-After)",
    )
    serve_parser.add_argument(
        "--cache-capacity", type=int, default=1024, help="in-memory LRU entries"
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None, help="default per-request compute budget (s)"
    )
    serve_parser.add_argument(
        "--store",
        help="persistent cache tier: append-only JSONL result file "
        "(results survive restarts and warm the cache at boot)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.add_argument(
        "--events",
        help="append the service's structured events to this JSONL file "
        "(also streamed live on GET /events)",
    )
    serve_parser.add_argument(
        "--alert",
        action="append",
        metavar="RULE",
        help="server-side alert rule, e.g. 'repro_pool_saturation > 0.9 for 10s'; "
        "repeatable; firings appear as alert.fired events on /events",
    )
    serve_parser.add_argument(
        "--alert-interval",
        type=float,
        default=1.0,
        help="seconds between server-side alert evaluations",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    loadtest_parser = subparsers.add_parser(
        "loadtest", help="drive a running service through cold/warm/overload phases"
    )
    loadtest_parser.add_argument(
        "--url",
        action="append",
        help="base URL of the running service; repeat to drive a replica "
        "fleet round-robin (default: http://127.0.0.1:8321)",
    )
    loadtest_parser.add_argument(
        "--saturation",
        metavar="CLIENTS",
        help="after the phases, measure a warm saturation curve at these "
        "comma-separated client counts, e.g. '1,2,4,8' (adds a `saturation` "
        "section to the report)",
    )
    loadtest_parser.add_argument(
        "--saturation-duration",
        type=float,
        default=1.0,
        help="seconds each saturation point runs",
    )
    loadtest_parser.add_argument(
        "--saturation-workers",
        type=int,
        default=1,
        help="annotate saturation points with the serving fleet's --http-workers "
        "count (the curve is clients x workers x replicas)",
    )
    loadtest_parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESET_SUITES),
        help="scenario suite to request",
    )
    loadtest_parser.add_argument("--seed", type=int, default=0, help="suite base seed")
    loadtest_parser.add_argument(
        "--limit", type=int, default=0, help="use only the first N scenarios"
    )
    loadtest_parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client connections"
    )
    loadtest_parser.add_argument(
        "--requests", type=int, default=4, help="warm-phase requests per client"
    )
    loadtest_parser.add_argument(
        "--overload",
        action="store_true",
        help="also run the overload phase (burst of distinct fresh scenarios; "
        "expects explicit 429 rejections, not failures)",
    )
    loadtest_parser.add_argument(
        "--overload-requests", type=int, default=32, help="overload burst size"
    )
    loadtest_parser.add_argument(
        "--request-timeout", type=float, default=300.0, help="per-request client timeout (s)"
    )
    loadtest_parser.add_argument("--out", help="write the report as JSON (BENCH_service.json)")
    loadtest_parser.add_argument("--markdown", action="store_true", help="emit markdown tables")
    loadtest_parser.add_argument(
        "--alert",
        action="append",
        metavar="RULE",
        help="alert rule evaluated against the service's /metrics registry "
        "while the load runs, e.g. 'repro_requests_total{status=429} > 10'; "
        "repeatable; any firing rule makes the loadtest exit non-zero",
    )
    loadtest_parser.add_argument(
        "--alert-baseline",
        metavar="BENCH_JSON",
        help="derive a warm-p50 regression rule from a BENCH_service.json baseline",
    )
    loadtest_parser.add_argument(
        "--baseline-factor",
        type=float,
        default=1.5,
        help="--alert-baseline: fire when warm p50 exceeds FACTOR x baseline",
    )
    loadtest_parser.add_argument(
        "--alert-interval",
        type=float,
        default=1.0,
        help="seconds between alert evaluations (each scrapes /metrics)",
    )
    loadtest_parser.set_defaults(handler=cmd_loadtest)

    top_parser = subparsers.add_parser(
        "top", help="live ANSI dashboard over a running service or an in-progress sweep"
    )
    top_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="poll this service's /dashboard endpoint",
    )
    top_parser.add_argument(
        "--events",
        help="instead of a service, tail this sweep events JSONL file "
        "(the sweep's --events sink)",
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between refreshes"
    )
    top_parser.add_argument(
        "--once", action="store_true", help="render a single frame and exit (no clear)"
    )
    top_parser.add_argument(
        "--no-color", action="store_true", help="disable ANSI colors"
    )
    top_parser.set_defaults(handler=cmd_top)

    profile_parser = subparsers.add_parser(
        "profile", help="profile a pipeline target: span tree + hotspots + cProfile"
    )
    profile_parser.add_argument(
        "target",
        choices=("solve", "simulate", "sweep"),
        help="what to profile: one solve, one solve+simulate, or a scenario sweep",
    )
    profile_parser.add_argument(
        "--map", default="sorting-center-small", help="map preset (solve/simulate)"
    )
    profile_parser.add_argument(
        "--units", type=int, default=16, help="total workload units (solve/simulate)"
    )
    profile_parser.add_argument("--horizon", type=int, default=1500, help="timestep limit T")
    profile_parser.add_argument("--backend", default="highs", help="ILP backend")
    profile_parser.add_argument(
        "--objective", default="min_agents", choices=("none", "min_agents", "min_carrying")
    )
    profile_parser.add_argument(
        "--routing",
        default="abstract",
        choices=ROUTERS,
        help="simulate: execution mode (abstract replay or a MAPF router)",
    )
    profile_parser.add_argument(
        "--disruptions", default="none", help="simulate: failure-injection spec"
    )
    profile_parser.add_argument("--seed", type=int, default=0, help="simulation/suite seed")
    profile_parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESET_SUITES),
        help="sweep: scenario suite to profile",
    )
    profile_parser.add_argument(
        "--limit", type=int, default=2, help="sweep: profile only the first N scenarios"
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, help="rows in the hotspot/function tables"
    )
    profile_parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "ncalls"),
        help="cProfile sort order",
    )
    profile_parser.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip the C-level profiler (span tracing only; lower overhead)",
    )
    profile_parser.add_argument("--save-trace", help="write the span trace as JSON")
    profile_parser.set_defaults(handler=cmd_profile)

    validate_parser = subparsers.add_parser("validate", help="validate a saved plan")
    validate_parser.add_argument("--plan", required=True, help="plan JSON file")
    validate_parser.set_defaults(handler=cmd_validate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
